//! Training and evaluation loops.
//!
//! [`Trainer::fit`] runs mini-batch surrogate-gradient training (optionally
//! quantization-aware) on a [`Dataset`]; [`evaluate`] measures accuracy and
//! spike statistics of a trained network on a dataset split, which is what
//! the Fig. 1 / Table II experiments consume.
//!
//! # Crash safety and resumability
//!
//! Training is supervised and resumable:
//!
//! * **Checkpoints** — with [`TrainConfig::checkpoint_path`] set, the
//!   trainer atomically saves a [`TrainCheckpoint`] (weights, full optimizer
//!   state, schedule position, epoch/batch cursor, progress report) every
//!   [`TrainConfig::checkpoint_every`] optimizer steps and at graceful stop.
//!   [`Trainer::resume`] continues a run such that the final weights are
//!   **bitwise identical** to the uninterrupted run, at any thread count.
//! * **Worker supervision** — each sample's gradient computation runs under
//!   `catch_unwind`; a panicking, non-finite or invalid-data sample is
//!   *quarantined* (typed [`SampleFault`] in [`TrainReport::faults`],
//!   excluded from the batch fold deterministically by sample index) and the
//!   epoch continues. [`TrainConfig::fault_budget`] bounds the tolerated
//!   quarantine count; exceeding it aborts with
//!   [`TrainError::FaultBudgetExceeded`] naming the last-good checkpoint.
//! * **Fail fast on non-finite** — with [`TrainConfig::quarantine`] off, a
//!   NaN/Inf batch loss or gradient norm aborts with
//!   [`TrainError::NonFinite`] *before* the optimizer step, so a poisoned
//!   update never reaches the weights.
//! * **Graceful interruption** — a [`StopHandle`] is checked at every batch
//!   boundary; [`StopHandle::stop`] checkpoints and returns a partial report
//!   (`completed == false`).

use crate::bptt::{Bptt, BpttScratch, EffectiveLayers, NetworkGradients, SampleResult};
use crate::checkpoint::{DataFingerprint, TrainCheckpoint, TrainCursor};
use crate::error::TrainError;
use crate::fault::{FaultReason, SampleFault, TrainFault, TrainFaultPlan};
use crate::optim::{Adam, Optimizer, OptimizerKind, OptimizerState, Sgd};
use crate::schedule::{LrSchedule, ScheduleKind};
use crate::surrogate::SurrogateKind;
use serde::{Deserialize, Serialize};
use snn_core::encoding::Encoder;
use snn_core::error::SnnError;
use snn_core::network::{Layer, SnnNetwork};
use snn_core::quant::Precision;
use snn_core::stats::AggregateSpikeStats;
use snn_core::tensor::Tensor;
use snn_data::{Dataset, Sample, Split};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of samples a worker claims per grab from the shared batch queue: a
/// couple at a time amortizes the atomic while keeping the tail balanced.
/// Chunking is pure scheduling — results land in per-sample slots and are
/// folded in sample order, so the batch gradient is bitwise identical at any
/// thread count (and to the sequential path).
const TRAIN_CHUNK: usize = 2;

/// One supervised sample's outcome: outer `Err` is a hard engine error that
/// aborts the run, the inner `Err(FaultReason)` a quarantinable fault.
type SampleOutcome = Result<Result<SampleResult, FaultReason>, SnnError>;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate (constant unless [`TrainConfig::schedule`] is set).
    pub learning_rate: f32,
    /// Input encoder (coding scheme + timesteps).
    pub encoder: Encoder,
    /// Weight precision for QAT (`Fp32` trains in full precision).
    pub precision: Precision,
    /// Surrogate gradient of the spike non-linearity.
    pub surrogate: SurrogateKind,
    /// Optional global-norm gradient clipping.
    pub grad_clip: Option<f32>,
    /// Limits the number of training samples per epoch (for fast runs).
    pub max_train_samples: Option<usize>,
    /// Base RNG seed (rate-coding noise, sample ordering).
    pub seed: u64,
    /// Number of worker threads for per-sample gradient computation.
    pub threads: usize,
    /// Which optimizer updates the weights.
    pub optimizer: OptimizerKind,
    /// Optional learning-rate schedule, applied at each epoch start (`None`
    /// keeps [`TrainConfig::learning_rate`] constant).
    pub schedule: Option<ScheduleKind>,
    /// Where to save training checkpoints (`None` disables checkpointing).
    pub checkpoint_path: Option<PathBuf>,
    /// Save a checkpoint every this many optimizer steps (0 saves only at
    /// graceful stop / completion). Requires [`TrainConfig::checkpoint_path`].
    pub checkpoint_every: usize,
    /// Maximum quarantined samples tolerated per run before the trainer
    /// aborts with [`TrainError::FaultBudgetExceeded`].
    pub fault_budget: usize,
    /// Whether samples producing a non-finite loss or gradient are
    /// quarantined (`true`, the default) or flow into the batch fold, where
    /// the non-finite fail-fast aborts the run typed (`false`).
    pub quarantine: bool,
}

impl TrainConfig {
    /// A quick configuration suitable for tests and examples: direct coding
    /// with 2 timesteps, small batches, a single epoch.
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 1,
            batch_size: 8,
            learning_rate: 2e-3,
            encoder: Encoder::paper_direct(),
            precision: Precision::Fp32,
            surrogate: SurrogateKind::paper_default(),
            grad_clip: Some(5.0),
            max_train_samples: None,
            seed: 0,
            // The same resolution rule as inference (`EngineBuilder`):
            // `SNN_THREADS` wins over the machine's available parallelism.
            threads: snn_core::resolve_threads(None),
            optimizer: OptimizerKind::Adam,
            schedule: None,
            checkpoint_path: None,
            checkpoint_every: 0,
            fault_budget: 16,
            quarantine: true,
        }
    }

    /// The quick configuration with QAT at the given precision.
    pub fn quick_qat(precision: Precision) -> Self {
        TrainConfig {
            precision,
            ..TrainConfig::quick()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] naming the offending parameter:
    /// zero `batch_size` (which would never advance an epoch), zero
    /// `epochs`, zero `threads`, a non-positive or non-finite
    /// `learning_rate`, or a `checkpoint_every` cadence without a
    /// `checkpoint_path`.
    pub fn validate(&self) -> Result<(), TrainError> {
        let err = |parameter: &str, message: &str| {
            Err(TrainError::InvalidConfig {
                parameter: parameter.to_string(),
                message: message.to_string(),
            })
        };
        if self.batch_size == 0 {
            return err(
                "batch_size",
                "must be at least 1 (a zero-sample batch would never advance the epoch)",
            );
        }
        if self.epochs == 0 {
            return err("epochs", "must be at least 1");
        }
        if self.threads == 0 {
            return err("threads", "must be at least 1");
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return err("learning_rate", "must be finite and positive");
        }
        if self.checkpoint_every > 0 && self.checkpoint_path.is_none() {
            return err(
                "checkpoint_every",
                "periodic checkpointing requires checkpoint_path to be set",
            );
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Per-epoch training progress.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy per epoch.
    pub epoch_accuracies: Vec<f64>,
    /// Mean spikes per sample per epoch (a live view of the sparsity the
    /// network settles into).
    pub epoch_mean_spikes: Vec<f64>,
    /// Every quarantined sample of the run, identified by `(epoch, index)` —
    /// the list is identical across batch sizes and thread counts.
    pub faults: Vec<SampleFault>,
    /// `true` if the run finished all configured epochs; `false` if it was
    /// gracefully stopped early via a [`StopHandle`].
    pub completed: bool,
    /// The checkpoint describing this run's end state, when checkpointing is
    /// configured (on graceful stop: the resume point).
    pub checkpoint: Option<PathBuf>,
}

impl TrainReport {
    /// Final-epoch training accuracy (0.0 if no epoch ran).
    pub fn final_accuracy(&self) -> f64 {
        self.epoch_accuracies.last().copied().unwrap_or(0.0)
    }

    /// Final-epoch mean loss (0.0 if no epoch ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(0.0)
    }
}

/// Evaluation result on a dataset split.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalReport {
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Number of evaluated samples.
    pub samples: usize,
    /// Total spikes over all samples and timesteps.
    pub total_spikes: u64,
    /// Mean spikes per sample.
    pub mean_spikes_per_sample: f64,
    /// Per-layer aggregate spike statistics.
    pub aggregate: AggregateSpikeStats,
}

/// A cloneable handle requesting graceful interruption of a training run.
///
/// The trainer checks it at every batch boundary; once triggered it saves a
/// checkpoint (if configured) and returns the partial [`TrainReport`] with
/// `completed == false`. [`StopHandle::stop_after_steps`] triggers
/// *deterministically* once the run's total optimizer-step counter reaches
/// the given value — the counter survives resume, which is what lets the
/// test harness interrupt a run at every single batch boundary and prove
/// bitwise-identical resume at each one.
#[derive(Debug, Clone)]
pub struct StopHandle {
    inner: Arc<StopState>,
}

#[derive(Debug)]
struct StopState {
    requested: AtomicBool,
    after_steps: AtomicU64,
}

impl StopHandle {
    /// A handle with no stop requested.
    pub fn new() -> Self {
        StopHandle {
            inner: Arc::new(StopState {
                requested: AtomicBool::new(false),
                after_steps: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Requests a stop at the next batch boundary.
    pub fn stop(&self) {
        self.inner.requested.store(true, Ordering::SeqCst);
    }

    /// Requests a deterministic stop at the boundary where the run's total
    /// optimizer-step count reaches `steps` (0 stops before the first
    /// batch).
    pub fn stop_after_steps(&self, steps: u64) {
        self.inner.after_steps.store(steps, Ordering::SeqCst);
    }

    /// Whether an asynchronous [`StopHandle::stop`] was requested.
    pub fn is_stop_requested(&self) -> bool {
        self.inner.requested.load(Ordering::SeqCst)
    }

    fn should_stop(&self, steps_done: u64) -> bool {
        self.is_stop_requested() || steps_done >= self.inner.after_steps.load(Ordering::SeqCst)
    }
}

impl Default for StopHandle {
    fn default() -> Self {
        Self::new()
    }
}

/// The trainer's optimizer, dispatched from [`OptimizerKind`].
#[derive(Debug)]
enum AnyOptimizer {
    Sgd(Sgd),
    Adam(Adam),
}

impl AnyOptimizer {
    fn new(kind: OptimizerKind, lr: f32) -> Self {
        match kind {
            OptimizerKind::Adam => AnyOptimizer::Adam(Adam::new(lr)),
            OptimizerKind::Sgd { momentum } => AnyOptimizer::Sgd(Sgd::new(lr, momentum)),
        }
    }

    fn from_state(state: OptimizerState) -> Result<Self, SnnError> {
        Ok(match &state {
            OptimizerState::Sgd { .. } => AnyOptimizer::Sgd(Sgd::from_state(state)?),
            OptimizerState::Adam { .. } => AnyOptimizer::Adam(Adam::from_state(state)?),
        })
    }

    fn state(&self) -> OptimizerState {
        match self {
            AnyOptimizer::Sgd(o) => o.state(),
            AnyOptimizer::Adam(o) => o.state(),
        }
    }
}

impl Optimizer for AnyOptimizer {
    fn step(&mut self, key: &str, param: &mut Tensor, grad: &Tensor) -> Result<(), SnnError> {
        match self {
            AnyOptimizer::Sgd(o) => o.step(key, param, grad),
            AnyOptimizer::Adam(o) => o.step(key, param, grad),
        }
    }

    fn learning_rate(&self) -> f32 {
        match self {
            AnyOptimizer::Sgd(o) => o.learning_rate(),
            AnyOptimizer::Adam(o) => o.learning_rate(),
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        match self {
            AnyOptimizer::Sgd(o) => o.set_learning_rate(lr),
            AnyOptimizer::Adam(o) => o.set_learning_rate(lr),
        }
    }
}

/// Mini-batch trainer: surrogate-gradient BPTT with a configurable
/// optimizer (+ optional QAT), per-sample worker supervision and resumable
/// checkpoints.
///
/// Per-sample gradient computation fans out over a chunked worker pool
/// ([`std::thread::scope`] workers pulling sample chunks from a shared
/// counter, mirroring `Session::run_batch`), so per-batch overhead is
/// O(threads) thread spawns instead of the former one-spawn-per-sample.
/// Each worker slot owns a **persistent** [`BpttScratch`] that lives in the
/// trainer across batches and epochs, so the backward pass stops allocating
/// once the first batch has warmed the buffers.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    bptt: Bptt,
    optimizer: AnyOptimizer,
    /// One long-lived backward scratch per worker slot, index-aligned with
    /// the spawned workers (slot 0 doubles as the sequential-path scratch).
    scratches: Vec<BpttScratch>,
    /// Deterministic fault injection for chaos tests (off by default).
    fault_plan: Option<TrainFaultPlan>,
}

impl Trainer {
    /// Creates a trainer from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] if the configuration fails
    /// [`TrainConfig::validate`].
    pub fn new(config: TrainConfig) -> Result<Self, TrainError> {
        config.validate()?;
        let bptt = Bptt::new(config.surrogate, config.precision);
        let optimizer = AnyOptimizer::new(config.optimizer, config.learning_rate);
        Ok(Trainer {
            config,
            bptt,
            optimizer,
            scratches: Vec::new(),
            fault_plan: None,
        })
    }

    /// Attaches a deterministic [`TrainFaultPlan`] (chaos testing): the plan
    /// injects worker panics, NaN gradients and corrupt samples as pure
    /// functions of `(plan seed, epoch, sample index)`.
    pub fn with_fault_plan(mut self, plan: TrainFaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The optimizer's current learning rate (after any schedule updates).
    pub fn learning_rate(&self) -> f32 {
        self.optimizer.learning_rate()
    }

    /// Trains `network` on the training split of `data`.
    ///
    /// # Example
    ///
    /// A one-epoch run on a tiny synthetic dataset (the kind the tests and
    /// benches use):
    ///
    /// ```
    /// use snn_core::network::{vgg9, Vgg9Config};
    /// use snn_data::{SyntheticConfig, SyntheticDataset};
    /// use snn_train::trainer::{TrainConfig, Trainer};
    ///
    /// # fn main() -> Result<(), snn_core::SnnError> {
    /// let mut net = vgg9(&Vgg9Config::cifar10_small())?;
    /// let data =
    ///     SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 8, 4));
    /// let mut cfg = TrainConfig::quick();
    /// cfg.max_train_samples = Some(4);
    /// cfg.batch_size = 2;
    /// cfg.threads = 1;
    /// let mut trainer = Trainer::new(cfg)?;
    /// let report = trainer.fit(&mut net, &data)?;
    /// assert_eq!(report.epoch_losses.len(), 1);
    /// assert!(report.final_loss().is_finite());
    /// assert!(report.completed);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates any shape/configuration error raised during the forward or
    /// backward passes, plus the typed training aborts
    /// ([`TrainError::NonFinite`], [`TrainError::FaultBudgetExceeded`]).
    pub fn fit(
        &mut self,
        network: &mut SnnNetwork,
        data: &dyn Dataset,
    ) -> Result<TrainReport, TrainError> {
        self.fit_with_stop(network, data, &StopHandle::new())
    }

    /// [`Trainer::fit`] with a [`StopHandle`] for graceful interruption.
    ///
    /// # Errors
    ///
    /// As [`Trainer::fit`].
    pub fn fit_with_stop(
        &mut self,
        network: &mut SnnNetwork,
        data: &dyn Dataset,
        stop: &StopHandle,
    ) -> Result<TrainReport, TrainError> {
        self.run_loop(
            network,
            data,
            TrainCursor::default(),
            TrainReport::default(),
            stop,
        )
    }

    /// Resumes a run from a [`TrainCheckpoint`] so that the final weights
    /// are bitwise identical to the uninterrupted run, at any thread count.
    ///
    /// The checkpoint's own configuration drives the continuation; `network`
    /// is overwritten with the checkpointed weights after validation.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::IncompatibleResume`] if the checkpoint does not
    /// match `network`/`data`, plus everything [`Trainer::fit`] can return.
    pub fn resume(
        checkpoint: TrainCheckpoint,
        network: &mut SnnNetwork,
        data: &dyn Dataset,
    ) -> Result<TrainReport, TrainError> {
        Self::resume_with_stop(checkpoint, network, data, &StopHandle::new())
    }

    /// [`Trainer::resume`] with a [`StopHandle`] for graceful interruption.
    ///
    /// # Errors
    ///
    /// As [`Trainer::resume`].
    pub fn resume_with_stop(
        checkpoint: TrainCheckpoint,
        network: &mut SnnNetwork,
        data: &dyn Dataset,
        stop: &StopHandle,
    ) -> Result<TrainReport, TrainError> {
        checkpoint.validate_against(network, data)?;
        checkpoint.restore_weights(network)?;
        let TrainCheckpoint {
            config,
            cursor,
            report,
            optimizer,
            ..
        } = checkpoint;
        config.validate()?;
        let bptt = Bptt::new(config.surrogate, config.precision);
        let optimizer = AnyOptimizer::from_state(optimizer)?;
        let mut trainer = Trainer {
            config,
            bptt,
            optimizer,
            scratches: Vec::new(),
            fault_plan: None,
        };
        trainer.run_loop(network, data, cursor, report, stop)
    }

    /// The shared epoch/batch loop behind `fit` and `resume`: starts at
    /// `start` (a batch boundary) with `report` carrying prior progress.
    fn run_loop(
        &mut self,
        network: &mut SnnNetwork,
        data: &dyn Dataset,
        start: TrainCursor,
        mut report: TrainReport,
        stop: &StopHandle,
    ) -> Result<TrainReport, TrainError> {
        self.config.validate()?;
        let fingerprint = DataFingerprint::of(data);
        let total = data.len(Split::Train);
        let limit = self.config.max_train_samples.unwrap_or(total).min(total);
        let num_classes = data.num_classes();
        let batch_size = self.config.batch_size;
        let mut steps = start.steps;
        let mut last_good: Option<PathBuf> = report.checkpoint.take();
        report.completed = false;
        for epoch in start.epoch..self.config.epochs {
            if let Some(schedule) = self.config.schedule {
                self.optimizer
                    .set_learning_rate(schedule.learning_rate(epoch));
            }
            let resuming = epoch == start.epoch;
            let mut epoch_loss = if resuming { start.epoch_loss } else { 0.0 };
            let mut correct = if resuming { start.correct } else { 0 };
            let mut seen = if resuming { start.seen } else { 0 };
            let mut spikes = if resuming { start.spikes } else { 0 };
            let mut index = if resuming { start.next_index } else { 0 };
            while index < limit {
                if stop.should_stop(steps) {
                    let cursor = TrainCursor {
                        epoch,
                        next_index: index,
                        steps,
                        epoch_loss,
                        correct,
                        seen,
                        spikes,
                    };
                    if self.config.checkpoint_path.is_some() {
                        let path = self.save_checkpoint(network, &fingerprint, cursor, &report)?;
                        report.checkpoint = Some(path);
                    } else {
                        report.checkpoint = last_good;
                    }
                    return Ok(report);
                }
                let batch_index = index / batch_size;
                let end = (index + batch_size).min(limit);
                let batch: Vec<Sample> =
                    (index..end).map(|i| data.sample(Split::Train, i)).collect();
                let outcomes =
                    self.batch_results(network, &batch, epoch as u64, index, num_classes)?;
                let mut grads = NetworkGradients::zeros_like(network);
                let mut included = 0usize;
                let mut batch_loss = 0.0_f64;
                for (offset, outcome) in outcomes.into_iter().enumerate() {
                    match outcome {
                        Ok(r) => {
                            let loss_finite = r.loss.is_finite();
                            let grads_finite = r.gradients.global_norm().is_finite();
                            if (!loss_finite || !grads_finite) && self.config.quarantine {
                                report.faults.push(SampleFault {
                                    epoch,
                                    index: index + offset,
                                    reason: FaultReason::NonFinite {
                                        what: if loss_finite { "gradient" } else { "loss" }
                                            .to_string(),
                                    },
                                });
                                continue;
                            }
                            epoch_loss += f64::from(r.loss);
                            batch_loss += f64::from(r.loss);
                            spikes += r.total_spikes;
                            if r.correct {
                                correct += 1;
                            }
                            grads.accumulate(&r.gradients)?;
                            included += 1;
                        }
                        Err(reason) => {
                            report.faults.push(SampleFault {
                                epoch,
                                index: index + offset,
                                reason,
                            });
                        }
                    }
                }
                if report.faults.len() > self.config.fault_budget {
                    return Err(TrainError::FaultBudgetExceeded {
                        faults: report.faults.len(),
                        budget: self.config.fault_budget,
                        epoch,
                        last_good,
                    });
                }
                if included > 0 {
                    grads.scale(1.0 / included as f32);
                    if !batch_loss.is_finite() || !grads.global_norm().is_finite() {
                        return Err(TrainError::NonFinite {
                            epoch,
                            batch: batch_index,
                            what: if batch_loss.is_finite() {
                                "gradient norm"
                            } else {
                                "batch loss"
                            }
                            .to_string(),
                            last_good,
                        });
                    }
                    if let Some(clip) = self.config.grad_clip {
                        grads.clip_global_norm(clip);
                    }
                    apply_gradients(network, &grads, &mut self.optimizer)?;
                    steps += 1;
                    seen += included;
                }
                index = end;
                if included > 0
                    && self.config.checkpoint_every > 0
                    && steps.is_multiple_of(self.config.checkpoint_every as u64)
                {
                    let cursor = TrainCursor {
                        epoch,
                        next_index: index,
                        steps,
                        epoch_loss,
                        correct,
                        seen,
                        spikes,
                    };
                    let path = self.save_checkpoint(network, &fingerprint, cursor, &report)?;
                    last_good = Some(path);
                }
            }
            report
                .epoch_losses
                .push((epoch_loss / seen.max(1) as f64) as f32);
            report
                .epoch_accuracies
                .push(correct as f64 / seen.max(1) as f64);
            report
                .epoch_mean_spikes
                .push(spikes as f64 / seen.max(1) as f64);
        }
        report.completed = true;
        if self.config.checkpoint_path.is_some() {
            let cursor = TrainCursor {
                epoch: self.config.epochs,
                next_index: 0,
                steps,
                epoch_loss: 0.0,
                correct: 0,
                seen: 0,
                spikes: 0,
            };
            let path = self.save_checkpoint(network, &fingerprint, cursor, &report)?;
            report.checkpoint = Some(path);
        } else {
            report.checkpoint = last_good;
        }
        Ok(report)
    }

    /// Atomically saves the current run state to the configured checkpoint
    /// path.
    fn save_checkpoint(
        &self,
        network: &SnnNetwork,
        fingerprint: &DataFingerprint,
        cursor: TrainCursor,
        report: &TrainReport,
    ) -> Result<PathBuf, TrainError> {
        let path = self
            .config
            .checkpoint_path
            .clone()
            .expect("caller checks checkpoint_path");
        let checkpoint = TrainCheckpoint {
            config: self.config.clone(),
            data: fingerprint.clone(),
            cursor,
            report: TrainReport {
                completed: false,
                checkpoint: None,
                ..report.clone()
            },
            weights: TrainCheckpoint::capture_weights(network),
            optimizer: self.optimizer.state(),
        };
        checkpoint.save(&path)?;
        Ok(path)
    }

    /// Computes supervised per-sample outcomes for one batch over the
    /// persistent chunked worker pool. The fake-quantized working copies of
    /// the weight layers are built once per batch ([`Bptt::prepare`]) and
    /// shared by every sample and worker thread — weights only change at the
    /// optimizer step between batches, so per-sample re-quantization would
    /// be pure overhead.
    ///
    /// Determinism: workers pull contiguous [`TRAIN_CHUNK`]-sized index
    /// chunks from an atomic counter and deposit each outcome in its
    /// sample's slot, and the caller folds the slots in sample order —
    /// which worker computed which sample can never affect a bit of the
    /// batch gradient. Workers do **not** fold gradients into per-worker
    /// accumulators: a race-dependent (or thread-count-dependent) merge
    /// order would reassociate the f32 sums and break the bitwise
    /// thread-count-invariance guarantee of `fit`.
    ///
    /// Supervision: each sample runs under `catch_unwind` after input
    /// validation; a panic or invalid sample becomes an `Err(FaultReason)`
    /// outcome instead of tearing down the epoch. A panicked worker's
    /// scratch is replaced (its buffers may be mid-update), which is safe
    /// because scratch contents never influence result bits.
    ///
    /// Outer `Err` is a hard engine error (aborts the run); the inner
    /// per-sample `Err(FaultReason)` is a quarantinable fault.
    fn batch_results(
        &mut self,
        network: &SnnNetwork,
        batch: &[Sample],
        epoch: u64,
        batch_start: usize,
        num_classes: usize,
    ) -> Result<Vec<Result<SampleResult, FaultReason>>, SnnError> {
        let bptt = self.bptt;
        let encoder = self.config.encoder;
        let base_seed = self.config.seed ^ (epoch << 32);
        let plan = self.fault_plan;
        let effective = bptt.prepare(network)?;
        let workers = self.config.threads.max(1).min(batch.len());
        while self.scratches.len() < workers.max(1) {
            self.scratches.push(BpttScratch::new());
        }
        if workers <= 1 {
            let scratch = &mut self.scratches[0];
            return batch
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    supervised_sample(
                        &bptt,
                        network,
                        &effective,
                        s,
                        &encoder,
                        base_seed + i as u64,
                        scratch,
                        plan,
                        epoch as usize,
                        batch_start + i,
                        num_classes,
                    )
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<SampleOutcome>> = (0..batch.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self.scratches[..workers]
                .iter_mut()
                .map(|scratch| {
                    let next = &next;
                    let effective = &effective;
                    let bptt = &bptt;
                    scope.spawn(move || {
                        let mut done: Vec<(usize, SampleOutcome)> = Vec::new();
                        loop {
                            let start = next.fetch_add(TRAIN_CHUNK, Ordering::Relaxed);
                            if start >= batch.len() {
                                break;
                            }
                            let end = (start + TRAIN_CHUNK).min(batch.len());
                            for (offset, s) in batch[start..end].iter().enumerate() {
                                let i = start + offset;
                                done.push((
                                    i,
                                    supervised_sample(
                                        bptt,
                                        network,
                                        effective,
                                        s,
                                        &encoder,
                                        base_seed + i as u64,
                                        scratch,
                                        plan,
                                        epoch as usize,
                                        batch_start + i,
                                        num_classes,
                                    ),
                                ));
                            }
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("trainer worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every sample is claimed by exactly one chunk"))
            .collect()
    }
}

/// One supervised per-sample gradient computation: input validation, fault
/// injection (if a plan is active) and `catch_unwind` panic containment.
///
/// The outer `Result` carries systemic errors (shape/config bugs) that must
/// abort the run; the inner one carries per-sample faults that quarantine
/// just this sample.
#[allow(clippy::too_many_arguments)]
fn supervised_sample(
    bptt: &Bptt,
    network: &SnnNetwork,
    effective: &EffectiveLayers,
    sample: &Sample,
    encoder: &Encoder,
    seed: u64,
    scratch: &mut BpttScratch,
    plan: Option<TrainFaultPlan>,
    epoch: usize,
    ds_index: usize,
    num_classes: usize,
) -> Result<Result<SampleResult, FaultReason>, SnnError> {
    let fault = plan.map_or(TrainFault::None, |p| p.fault_for(epoch, ds_index));
    let corrupted;
    let sample = if fault == TrainFault::CorruptSample {
        let mut s = sample.clone();
        if let Some(first) = s.image.as_mut_slice().first_mut() {
            *first = f32::NAN;
        }
        corrupted = s;
        &corrupted
    } else {
        sample
    };
    if let Err(e) = sample.validate(num_classes) {
        return Ok(Err(FaultReason::InvalidData {
            detail: e.to_string(),
        }));
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if fault == TrainFault::Panic {
            panic!("injected fault: training worker panic (sample {ds_index})");
        }
        bptt.sample_gradients_with(
            network,
            effective,
            &sample.image,
            sample.label,
            encoder,
            seed,
            scratch,
        )
    }));
    match outcome {
        Ok(Ok(mut result)) => {
            if fault == TrainFault::NanGrad {
                result.loss = f32::NAN;
            }
            Ok(Ok(result))
        }
        Ok(Err(e)) => Err(e),
        Err(payload) => {
            // The scratch may have been torn mid-update; replace it. Scratch
            // contents never affect result bits, only allocation reuse.
            *scratch = BpttScratch::new();
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            Ok(Err(FaultReason::Panicked { message }))
        }
    }
}

/// Applies a gradient set to a network's parameters with the given optimizer.
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if the gradients do not match the
/// network structure.
pub fn apply_gradients(
    network: &mut SnnNetwork,
    gradients: &NetworkGradients,
    optimizer: &mut dyn Optimizer,
) -> Result<(), SnnError> {
    if gradients.per_layer().len() != network.layers().len() {
        return Err(SnnError::shape(
            &[network.layers().len()],
            &[gradients.per_layer().len()],
            "apply_gradients",
        ));
    }
    for (li, layer) in network.layers_mut().iter_mut().enumerate() {
        let Some(grads) = &gradients.per_layer()[li] else {
            continue;
        };
        match layer {
            Layer::Conv { conv, .. } => {
                optimizer.step(
                    &format!("layer{li}.weight"),
                    conv.weight_mut(),
                    &grads.weight,
                )?;
                optimizer.step(&format!("layer{li}.bias"), conv.bias_mut(), &grads.bias)?;
            }
            Layer::Linear { linear, .. } => {
                optimizer.step(
                    &format!("layer{li}.weight"),
                    linear.weight_mut(),
                    &grads.weight,
                )?;
                optimizer.step(&format!("layer{li}.bias"), linear.bias_mut(), &grads.bias)?;
            }
            Layer::Pool { .. } => {}
        }
    }
    Ok(())
}

/// Evaluates `network` on a dataset split: accuracy plus the spike statistics
/// used by the sparsity and energy experiments.
///
/// # Errors
///
/// Propagates inference errors.
pub fn evaluate(
    network: &mut SnnNetwork,
    data: &dyn Dataset,
    split: Split,
    encoder: &Encoder,
    max_samples: Option<usize>,
) -> Result<EvalReport, SnnError> {
    let total = data.len(split);
    let limit = max_samples.unwrap_or(total).min(total);
    let mut aggregate = AggregateSpikeStats::new();
    let mut total_spikes = 0u64;
    for i in 0..limit {
        let sample = data.sample(split, i);
        let out = network.run_seeded(&sample.image, encoder, i as u64)?;
        let correct = out.prediction == sample.label;
        total_spikes += out.record.total_spikes();
        aggregate.add_run(&out.record, correct);
    }
    Ok(EvalReport {
        accuracy: aggregate.accuracy(),
        samples: limit,
        total_spikes,
        mean_spikes_per_sample: if limit == 0 {
            0.0
        } else {
            total_spikes as f64 / limit as f64
        },
        aggregate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::network::{vgg9, Vgg9Config};
    use snn_data::{SyntheticConfig, SyntheticDataset};

    fn tiny_data() -> SyntheticDataset {
        SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 20, 10))
    }

    #[test]
    fn quick_config_has_paper_encoder() {
        let cfg = TrainConfig::quick();
        assert_eq!(cfg.encoder, Encoder::paper_direct());
        assert_eq!(cfg.precision, Precision::Fp32);
        assert_eq!(cfg.optimizer, OptimizerKind::Adam);
        assert!(cfg.quarantine);
        assert_eq!(
            TrainConfig::quick_qat(Precision::Int4).precision,
            Precision::Int4
        );
    }

    /// The former `batch_size = 0` infinite loop is now a typed validation
    /// error, as are the other zero-valued footguns.
    #[test]
    fn zero_valued_configs_are_rejected_typed() {
        for (mutate, parameter) in [
            (
                Box::new(|c: &mut TrainConfig| c.batch_size = 0) as Box<dyn Fn(&mut TrainConfig)>,
                "batch_size",
            ),
            (Box::new(|c: &mut TrainConfig| c.epochs = 0), "epochs"),
            (Box::new(|c: &mut TrainConfig| c.threads = 0), "threads"),
            (
                Box::new(|c: &mut TrainConfig| c.learning_rate = f32::NAN),
                "learning_rate",
            ),
            (
                Box::new(|c: &mut TrainConfig| c.checkpoint_every = 4),
                "checkpoint_every",
            ),
        ] {
            let mut cfg = TrainConfig::quick();
            mutate(&mut cfg);
            match Trainer::new(cfg) {
                Err(TrainError::InvalidConfig { parameter: p, .. }) => {
                    assert_eq!(p, parameter);
                }
                other => panic!("expected InvalidConfig for {parameter}, got {other:?}"),
            }
        }
    }

    #[test]
    fn fit_runs_one_epoch_and_reports_progress() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let mut cfg = TrainConfig::quick();
        cfg.max_train_samples = Some(8);
        cfg.batch_size = 4;
        cfg.threads = 2;
        let mut trainer = Trainer::new(cfg).unwrap();
        let report = trainer.fit(&mut net, &data).unwrap();
        assert_eq!(report.epoch_losses.len(), 1);
        assert!(report.final_loss().is_finite());
        assert!(report.final_accuracy() >= 0.0);
        assert!(report.epoch_mean_spikes[0] > 0.0);
        assert!(report.completed);
        assert!(report.faults.is_empty());
    }

    #[test]
    fn fit_with_qat_runs() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let mut cfg = TrainConfig::quick_qat(Precision::Int4);
        cfg.max_train_samples = Some(4);
        cfg.batch_size = 4;
        cfg.threads = 1;
        let mut trainer = Trainer::new(cfg).unwrap();
        let report = trainer.fit(&mut net, &data).unwrap();
        assert!(report.final_loss().is_finite());
    }

    #[test]
    fn training_reduces_loss_over_epochs() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let mut cfg = TrainConfig::quick();
        cfg.epochs = 3;
        cfg.max_train_samples = Some(10);
        cfg.batch_size = 5;
        cfg.learning_rate = 5e-3;
        let mut trainer = Trainer::new(cfg).unwrap();
        let report = trainer.fit(&mut net, &data).unwrap();
        // Training on a 10-sample subset is noisy; require that the best epoch
        // improves on the first epoch rather than demanding monotonicity.
        let first = report.epoch_losses[0];
        let best = report
            .epoch_losses
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        assert!(
            best <= first + 1e-4,
            "best epoch loss should improve on the first: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn sgd_optimizer_and_schedule_drive_the_learning_rate() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let mut cfg = TrainConfig::quick();
        cfg.epochs = 3;
        cfg.max_train_samples = Some(4);
        cfg.batch_size = 4;
        cfg.threads = 1;
        cfg.optimizer = OptimizerKind::Sgd { momentum: 0.9 };
        cfg.schedule = Some(ScheduleKind::Step {
            base_lr: 0.01,
            step: 1,
            gamma: 0.5,
        });
        let mut trainer = Trainer::new(cfg).unwrap();
        trainer.fit(&mut net, &data).unwrap();
        // After 3 epochs the schedule has set the epoch-2 rate: 0.01 * 0.5^2.
        assert!((trainer.learning_rate() - 0.0025).abs() < 1e-7);
    }

    #[test]
    fn evaluate_reports_accuracy_and_spikes() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let report = evaluate(
            &mut net,
            &data,
            Split::Test,
            &Encoder::paper_direct(),
            Some(5),
        )
        .unwrap();
        assert_eq!(report.samples, 5);
        assert!(report.total_spikes > 0);
        assert!(report.mean_spikes_per_sample > 0.0);
        assert!((0.0..=1.0).contains(&report.accuracy));
        assert_eq!(report.aggregate.runs, 5);
    }

    /// The worker-pool determinism claim: training is bitwise identical at
    /// every thread count — same per-epoch losses/accuracies/spike counts and
    /// same final weights — because per-sample results are folded in sample
    /// order regardless of which worker produced them. Exercised in CI both
    /// with the default environment and with `SNN_THREADS=4`.
    #[test]
    fn fit_is_bitwise_identical_across_thread_counts() {
        let data = tiny_data();
        let mut reference_report = None;
        let mut reference_weights: Option<Vec<Vec<f32>>> = None;
        for threads in [1_usize, 2, 3, 4] {
            let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
            let mut cfg = TrainConfig::quick_qat(Precision::Int4);
            cfg.epochs = 2;
            cfg.max_train_samples = Some(6);
            cfg.batch_size = 3;
            cfg.encoder = Encoder::rate(2); // stochastic coding: seeds must line up too
            cfg.threads = threads;
            let mut trainer = Trainer::new(cfg).unwrap();
            let report = trainer.fit(&mut net, &data).unwrap();
            let weights: Vec<Vec<f32>> = net
                .layers()
                .iter()
                .filter_map(|layer| match layer {
                    Layer::Conv { conv, .. } => Some(conv.weight().as_slice().to_vec()),
                    Layer::Linear { linear, .. } => Some(linear.weight().as_slice().to_vec()),
                    Layer::Pool { .. } => None,
                })
                .collect();
            match (&reference_report, &reference_weights) {
                (None, _) => {
                    reference_report = Some(report);
                    reference_weights = Some(weights);
                }
                (Some(ref_report), Some(ref_weights)) => {
                    assert_eq!(&report, ref_report, "report differs at {threads} threads");
                    for (lw, rw) in weights.iter().zip(ref_weights.iter()) {
                        for (a, b) in lw.iter().zip(rw.iter()) {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "weights differ at {threads} threads"
                            );
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn stop_handle_interrupts_at_a_batch_boundary() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let data = tiny_data();
        let mut cfg = TrainConfig::quick();
        cfg.epochs = 2;
        cfg.max_train_samples = Some(6);
        cfg.batch_size = 2;
        cfg.threads = 1;
        let stop = StopHandle::new();
        stop.stop_after_steps(2);
        let mut trainer = Trainer::new(cfg).unwrap();
        let report = trainer.fit_with_stop(&mut net, &data, &stop).unwrap();
        assert!(!report.completed);
        // 2 of 3 batches of epoch 0 ran: no epoch stats were finalised.
        assert!(report.epoch_losses.is_empty());
    }

    #[test]
    fn apply_gradients_validates_structure() {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let other = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let good = NetworkGradients::zeros_like(&other);
        let mut adam = Adam::new(0.001);
        assert!(apply_gradients(&mut net, &good, &mut adam).is_ok());
    }
}
