//! Deterministic fault injection and fault reporting for training.
//!
//! Mirrors the serving stack's chaos machinery (`snn_serve::FaultPlan`): a
//! [`TrainFaultPlan`] is a seeded, pure description of which training
//! samples misbehave and how. The decision for a sample is a hash of
//! `(plan seed, epoch, sample index)` alone — **independent of batch size,
//! worker count and thread scheduling** — so a chaos run quarantines exactly
//! the same samples whether it executes on 1 thread or 8, and the surviving
//! training trajectory can be compared bitwise against a sequential
//! reference.
//!
//! [`SampleFault`] / [`FaultReason`] are the *reporting* side: every sample
//! the trainer quarantines (injected or real) lands in
//! [`TrainReport::faults`](crate::trainer::TrainReport::faults) as one typed
//! entry.
//!
//! ```
//! use snn_train::{TrainFault, TrainFaultPlan};
//!
//! let plan = TrainFaultPlan::new(42).with_panic_rate(0.5);
//! // Decisions are a pure function of (plan seed, epoch, sample index):
//! assert_eq!(plan.fault_for(0, 7), plan.fault_for(0, 7));
//! ```

use snn_core::splitmix64;

/// What a [`TrainFaultPlan`] decided to do to one `(epoch, sample)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainFault {
    /// Process the sample normally.
    None,
    /// The gradient worker panics on this sample (contained by the
    /// trainer's per-sample supervision; the sample is quarantined).
    Panic,
    /// The sample's gradients come back as NaN (quarantined, or — with
    /// quarantine disabled — poisoning the batch and tripping the
    /// non-finite fail-fast).
    NanGrad,
    /// The sample's pixels are corrupted to NaN before encoding (caught by
    /// input validation and quarantined as invalid data).
    CorruptSample,
}

/// A seeded, deterministic description of injected training faults.
///
/// All rates are probabilities in `[0, 1]`, evaluated per `(epoch, sample)`
/// from one uniform draw they partition, so
/// `panic_rate + nan_grad_rate + corrupt_rate` should not exceed 1 (excess
/// is clipped in that order).
#[derive(Debug, Clone, Copy)]
pub struct TrainFaultPlan {
    /// Seed of the plan; different seeds produce independent fault sets.
    pub seed: u64,
    /// Probability that a sample's gradient computation panics.
    pub panic_rate: f64,
    /// Probability that a sample's gradients are replaced with NaN.
    pub nan_grad_rate: f64,
    /// Probability that a sample's input pixels are corrupted to NaN.
    pub corrupt_rate: f64,
}

impl TrainFaultPlan {
    /// A plan with the given seed and no faults; switch them on with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        TrainFaultPlan {
            seed,
            panic_rate: 0.0,
            nan_grad_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }

    /// Sets the worker-panic probability.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the NaN-gradient probability.
    pub fn with_nan_grad_rate(mut self, rate: f64) -> Self {
        self.nan_grad_rate = rate;
        self
    }

    /// Sets the corrupt-input probability.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// The fault this plan assigns to dataset sample `index` during
    /// `epoch`. Pure: depends only on the plan and the arguments.
    pub fn fault_for(&self, epoch: usize, index: usize) -> TrainFault {
        let draw = unit(hash3(self.seed, epoch as u64, index as u64, 0x747261696e)); // "train"
        if draw < self.panic_rate {
            TrainFault::Panic
        } else if draw < self.panic_rate + self.nan_grad_rate {
            TrainFault::NanGrad
        } else if draw < self.panic_rate + self.nan_grad_rate + self.corrupt_rate {
            TrainFault::CorruptSample
        } else {
            TrainFault::None
        }
    }
}

/// Domain-separated hash of three words.
fn hash3(a: u64, b: u64, c: u64, domain: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(a ^ splitmix64(domain)) ^ b) ^ c)
}

/// Maps a hash onto `[0, 1)` with 53-bit precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Why one sample was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultReason {
    /// The gradient worker panicked on this sample; the payload is the
    /// panic message (or `"<non-string panic payload>"`).
    Panicked {
        /// The panic message.
        message: String,
    },
    /// The sample produced a non-finite loss or gradient.
    NonFinite {
        /// What was non-finite (`"loss"` or `"gradient"`).
        what: String,
    },
    /// The sample's input data failed validation before compute.
    InvalidData {
        /// What was wrong with the data.
        detail: String,
    },
}

impl std::fmt::Display for FaultReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultReason::Panicked { message } => write!(f, "worker panicked: {message}"),
            FaultReason::NonFinite { what } => write!(f, "non-finite {what}"),
            FaultReason::InvalidData { detail } => write!(f, "invalid input data: {detail}"),
        }
    }
}

/// One quarantined sample, as reported in
/// [`TrainReport::faults`](crate::trainer::TrainReport::faults).
///
/// Identified by dataset position — `(epoch, index)` — not by arrival
/// order, so the fault list of a run is identical across batch sizes and
/// thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleFault {
    /// Epoch in which the sample was quarantined (0-based).
    pub epoch: usize,
    /// The sample's index in the (possibly truncated) training set.
    pub index: usize,
    /// Why it was quarantined.
    pub reason: FaultReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let plan = TrainFaultPlan::new(1)
            .with_panic_rate(0.1)
            .with_nan_grad_rate(0.2)
            .with_corrupt_rate(0.2);
        for index in 0..64 {
            assert_eq!(plan.fault_for(0, index), plan.fault_for(0, index));
            assert_eq!(plan.fault_for(3, index), plan.fault_for(3, index));
        }
        // A different plan seed reshuffles the fault assignment.
        let other = TrainFaultPlan { seed: 2, ..plan };
        assert!((0..256).any(|i| plan.fault_for(0, i) != other.fault_for(0, i)));
        // Different epochs draw independent faults for the same sample.
        assert!((0..256).any(|i| plan.fault_for(0, i) != plan.fault_for(1, i)));
    }

    #[test]
    fn rates_partition_one_draw() {
        let all = TrainFaultPlan::new(3)
            .with_panic_rate(0.5)
            .with_nan_grad_rate(0.5);
        assert!((0..128).all(|i| all.fault_for(0, i) != TrainFault::None));
        let none = TrainFaultPlan::new(3);
        assert!((0..128).all(|i| none.fault_for(0, i) == TrainFault::None));
    }

    #[test]
    fn observed_rates_track_configured_rates() {
        let plan = TrainFaultPlan::new(7).with_nan_grad_rate(0.25);
        let n = 10_000;
        let hits = (0..n)
            .filter(|&i| plan.fault_for(0, i) == TrainFault::NanGrad)
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed NaN-grad rate {rate}");
    }

    #[test]
    fn fault_reason_display_is_informative() {
        let fault = SampleFault {
            epoch: 1,
            index: 9,
            reason: FaultReason::Panicked {
                message: "injected fault".into(),
            },
        };
        assert!(fault.reason.to_string().contains("injected fault"));
        assert!(FaultReason::NonFinite {
            what: "loss".into()
        }
        .to_string()
        .contains("loss"));
        assert!(FaultReason::InvalidData {
            detail: "NaN pixel".into()
        }
        .to_string()
        .contains("NaN pixel"));
    }
}
