//! Surrogate gradients for the non-differentiable spike function.
//!
//! The paper trains with surrogate gradients [Neftci et al., 2019] through
//! snnTorch. The spike function `s = H(u - θ)` has zero derivative almost
//! everywhere, so BPTT replaces `ds/du` with a smooth surrogate evaluated at
//! the membrane potential. The default is snnTorch's *fast sigmoid*
//! surrogate, `1 / (slope · |u - θ| + 1)²`.

use serde::{Deserialize, Serialize};

/// Which surrogate derivative to use for `ds/du`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SurrogateKind {
    /// Fast sigmoid: `1 / (slope · |u - θ| + 1)²` (snnTorch default).
    FastSigmoid {
        /// Slope (steepness) parameter; 25.0 matches snnTorch's default.
        slope: f32,
    },
    /// Arctangent surrogate: `1 / (1 + (π · α · (u - θ))²)`.
    Atan {
        /// Width parameter α.
        alpha: f32,
    },
    /// Boxcar / straight-through: 1 inside a window of half-width `width`
    /// around the threshold, 0 outside.
    Boxcar {
        /// Half-width of the pass-through window.
        width: f32,
    },
}

impl SurrogateKind {
    /// The default used throughout the reproduction (fast sigmoid, slope 25).
    pub fn paper_default() -> Self {
        SurrogateKind::FastSigmoid { slope: 25.0 }
    }

    /// Evaluates the surrogate derivative `ds/du` at membrane potential `u`
    /// for threshold `theta`.
    pub fn derivative(self, u: f32, theta: f32) -> f32 {
        let x = u - theta;
        match self {
            SurrogateKind::FastSigmoid { slope } => {
                let d = slope * x.abs() + 1.0;
                1.0 / (d * d)
            }
            SurrogateKind::Atan { alpha } => {
                let t = std::f32::consts::PI * alpha * x;
                1.0 / (1.0 + t * t)
            }
            SurrogateKind::Boxcar { width } => {
                if x.abs() <= width {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl Default for SurrogateKind {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fast_sigmoid_peaks_at_threshold() {
        let s = SurrogateKind::FastSigmoid { slope: 25.0 };
        assert_eq!(s.derivative(0.5, 0.5), 1.0);
        assert!(s.derivative(0.6, 0.5) < 1.0);
        assert!(s.derivative(0.4, 0.5) < 1.0);
    }

    #[test]
    fn fast_sigmoid_is_symmetric_around_threshold() {
        let s = SurrogateKind::paper_default();
        let above = s.derivative(0.8, 0.5);
        let below = s.derivative(0.2, 0.5);
        assert!((above - below).abs() < 1e-7);
    }

    #[test]
    fn atan_peaks_at_threshold() {
        let s = SurrogateKind::Atan { alpha: 2.0 };
        assert_eq!(s.derivative(1.0, 1.0), 1.0);
        assert!(s.derivative(2.0, 1.0) < 0.1);
    }

    #[test]
    fn boxcar_is_binary() {
        let s = SurrogateKind::Boxcar { width: 0.25 };
        assert_eq!(s.derivative(0.6, 0.5), 1.0);
        assert_eq!(s.derivative(0.76, 0.5), 0.0);
        assert_eq!(s.derivative(0.24, 0.5), 0.0);
    }

    #[test]
    fn default_is_fast_sigmoid_25() {
        assert_eq!(
            SurrogateKind::default(),
            SurrogateKind::FastSigmoid { slope: 25.0 }
        );
    }

    proptest! {
        /// All surrogates are bounded in [0, 1] and non-negative.
        #[test]
        fn surrogates_bounded(u in -10.0_f32..10.0, theta in 0.1_f32..2.0) {
            for s in [
                SurrogateKind::paper_default(),
                SurrogateKind::Atan { alpha: 2.0 },
                SurrogateKind::Boxcar { width: 0.5 },
            ] {
                let d = s.derivative(u, theta);
                prop_assert!((0.0..=1.0).contains(&d));
            }
        }

        /// Smooth surrogates decay monotonically away from the threshold.
        #[test]
        fn decay_away_from_threshold(dist in 0.0_f32..5.0, extra in 0.01_f32..5.0) {
            let s = SurrogateKind::paper_default();
            let near = s.derivative(0.5 + dist, 0.5);
            let far = s.derivative(0.5 + dist + extra, 0.5);
            prop_assert!(far <= near);
        }
    }
}
