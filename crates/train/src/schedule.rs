//! Learning-rate schedules.
//!
//! Long QAT runs in the paper's training setup decay the learning rate over
//! epochs; this module provides the standard schedules the trainer can apply
//! between epochs (constant, step decay, cosine annealing) behind one small
//! trait.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule: maps an epoch index to a learning rate.
pub trait LrSchedule {
    /// Learning rate to use during `epoch` (0-based).
    fn learning_rate(&self, epoch: usize) -> f32;
}

/// A constant learning rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantLr {
    /// The learning rate.
    pub lr: f32,
}

impl LrSchedule for ConstantLr {
    fn learning_rate(&self, _epoch: usize) -> f32 {
        self.lr
    }
}

/// Step decay: multiply the base rate by `gamma` every `step` epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepDecay {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Epochs between decays.
    pub step: usize,
    /// Multiplicative decay factor in `(0, 1]`.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn learning_rate(&self, epoch: usize) -> f32 {
        if self.step == 0 {
            return self.base_lr;
        }
        self.base_lr * self.gamma.powi((epoch / self.step) as i32)
    }
}

/// Cosine annealing from `base_lr` down to `min_lr` over `total_epochs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosineAnnealing {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Final learning rate.
    pub min_lr: f32,
    /// Number of epochs over which to anneal.
    pub total_epochs: usize,
}

impl LrSchedule for CosineAnnealing {
    fn learning_rate(&self, epoch: usize) -> f32 {
        if self.total_epochs == 0 {
            return self.base_lr;
        }
        let progress = (epoch.min(self.total_epochs) as f32) / self.total_epochs as f32;
        let cos = (std::f32::consts::PI * progress).cos();
        self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + cos)
    }
}

/// A serialisable choice of learning-rate schedule, for
/// [`TrainConfig`](crate::trainer::TrainConfig) and training checkpoints.
///
/// The position of a schedule is just the epoch index — it carries no other
/// mutable state — so a resumed run re-derives the exact learning rate for
/// every remaining epoch from the checkpointed cursor alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// [`StepDecay`]: multiply `base_lr` by `gamma` every `step` epochs.
    Step {
        /// Initial learning rate.
        base_lr: f32,
        /// Epochs between decays.
        step: usize,
        /// Multiplicative decay factor in `(0, 1]`.
        gamma: f32,
    },
    /// [`CosineAnnealing`] from `base_lr` down to `min_lr`.
    Cosine {
        /// Initial learning rate.
        base_lr: f32,
        /// Final learning rate.
        min_lr: f32,
        /// Number of epochs over which to anneal.
        total_epochs: usize,
    },
}

impl LrSchedule for ScheduleKind {
    fn learning_rate(&self, epoch: usize) -> f32 {
        match *self {
            ScheduleKind::Step {
                base_lr,
                step,
                gamma,
            } => StepDecay {
                base_lr,
                step,
                gamma,
            }
            .learning_rate(epoch),
            ScheduleKind::Cosine {
                base_lr,
                min_lr,
                total_epochs,
            } => CosineAnnealing {
                base_lr,
                min_lr,
                total_epochs,
            }
            .learning_rate(epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_never_changes() {
        let s = ConstantLr { lr: 0.01 };
        assert_eq!(s.learning_rate(0), 0.01);
        assert_eq!(s.learning_rate(100), 0.01);
    }

    #[test]
    fn step_decay_halves_every_step() {
        let s = StepDecay {
            base_lr: 0.1,
            step: 2,
            gamma: 0.5,
        };
        assert_eq!(s.learning_rate(0), 0.1);
        assert_eq!(s.learning_rate(1), 0.1);
        assert!((s.learning_rate(2) - 0.05).abs() < 1e-9);
        assert!((s.learning_rate(4) - 0.025).abs() < 1e-9);
    }

    #[test]
    fn step_decay_with_zero_step_is_constant() {
        let s = StepDecay {
            base_lr: 0.1,
            step: 0,
            gamma: 0.5,
        };
        assert_eq!(s.learning_rate(10), 0.1);
    }

    #[test]
    fn cosine_starts_at_base_and_ends_at_min() {
        let s = CosineAnnealing {
            base_lr: 0.1,
            min_lr: 0.001,
            total_epochs: 10,
        };
        assert!((s.learning_rate(0) - 0.1).abs() < 1e-6);
        assert!((s.learning_rate(10) - 0.001).abs() < 1e-6);
        assert!((s.learning_rate(20) - 0.001).abs() < 1e-6);
        // Midpoint is the average of base and min.
        assert!((s.learning_rate(5) - 0.0505).abs() < 1e-3);
    }

    #[test]
    fn schedules_are_object_safe() {
        let schedules: Vec<Box<dyn LrSchedule>> = vec![
            Box::new(ConstantLr { lr: 0.1 }),
            Box::new(StepDecay {
                base_lr: 0.1,
                step: 1,
                gamma: 0.9,
            }),
            Box::new(CosineAnnealing {
                base_lr: 0.1,
                min_lr: 0.0,
                total_epochs: 5,
            }),
        ];
        for s in &schedules {
            assert!(s.learning_rate(3) > 0.0 || s.learning_rate(3) == 0.0);
        }
    }

    #[test]
    fn schedule_kind_delegates_bitwise() {
        let step = ScheduleKind::Step {
            base_lr: 0.1,
            step: 2,
            gamma: 0.5,
        };
        let cosine = ScheduleKind::Cosine {
            base_lr: 0.1,
            min_lr: 0.001,
            total_epochs: 10,
        };
        for epoch in 0..20 {
            assert_eq!(
                step.learning_rate(epoch).to_bits(),
                StepDecay {
                    base_lr: 0.1,
                    step: 2,
                    gamma: 0.5
                }
                .learning_rate(epoch)
                .to_bits()
            );
            assert_eq!(
                cosine.learning_rate(epoch).to_bits(),
                CosineAnnealing {
                    base_lr: 0.1,
                    min_lr: 0.001,
                    total_epochs: 10
                }
                .learning_rate(epoch)
                .to_bits()
            );
        }
    }

    proptest! {
        /// Cosine annealing is monotonically non-increasing inside the
        /// annealing window and stays within [min_lr, base_lr].
        #[test]
        fn cosine_monotone_and_bounded(epoch in 0_usize..30) {
            let s = CosineAnnealing { base_lr: 0.2, min_lr: 0.01, total_epochs: 30 };
            let now = s.learning_rate(epoch);
            let next = s.learning_rate(epoch + 1);
            prop_assert!(next <= now + 1e-6);
            prop_assert!((0.01 - 1e-6..=0.2 + 1e-6).contains(&now));
        }

        /// Step decay never increases with epochs for gamma <= 1.
        #[test]
        fn step_decay_monotone(epoch in 0_usize..50, gamma in 0.1_f32..1.0) {
            let s = StepDecay { base_lr: 0.3, step: 3, gamma };
            prop_assert!(s.learning_rate(epoch + 1) <= s.learning_rate(epoch) + 1e-7);
        }
    }
}
