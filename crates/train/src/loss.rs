//! Loss functions and classification metrics for the population readout.
//!
//! The network's logits are the total spike counts of each class's share of
//! the output population layer. Training minimises a softmax cross-entropy
//! over those counts; its gradient (`softmax(logits) - one_hot(target)`) is
//! the seed of the BPTT backward pass.

use snn_core::error::SnnError;

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, grad)` where `grad[i] = softmax(logits)[i] - 1[i == target]`.
///
/// # Errors
///
/// Returns [`SnnError::IndexOutOfBounds`] if `target >= logits.len()` or
/// [`SnnError::InvalidConfig`] if `logits` is empty.
pub fn cross_entropy(logits: &[f32], target: usize) -> Result<(f32, Vec<f32>), SnnError> {
    if logits.is_empty() {
        return Err(SnnError::config("logits", "logits must be non-empty"));
    }
    if target >= logits.len() {
        return Err(SnnError::index(
            target,
            logits.len(),
            "cross_entropy target",
        ));
    }
    let probs = softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    Ok((loss, grad))
}

/// Top-1 accuracy of a batch of `(logits, target)` pairs, in `[0, 1]`.
pub fn accuracy(predictions: &[(Vec<f32>, usize)]) -> f64 {
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .filter(|(logits, target)| {
            let argmax = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            argmax == *target
        })
        .count();
    correct as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_of_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn cross_entropy_zero_when_confident_and_correct() {
        let (loss, grad) = cross_entropy(&[100.0, 0.0, 0.0], 0).unwrap();
        assert!(loss < 1e-3);
        assert!(grad[0].abs() < 1e-3);
    }

    #[test]
    fn cross_entropy_penalises_wrong_prediction() {
        let (loss_right, _) = cross_entropy(&[5.0, 0.0], 0).unwrap();
        let (loss_wrong, _) = cross_entropy(&[5.0, 0.0], 1).unwrap();
        assert!(loss_wrong > loss_right);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let (_, grad) = cross_entropy(&[0.3, -1.2, 2.0, 0.0], 2).unwrap();
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
        // Target entry is negative, everything else positive.
        assert!(grad[2] < 0.0);
        assert!(grad
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .all(|(_, &g)| g >= 0.0));
    }

    #[test]
    fn cross_entropy_validates_inputs() {
        assert!(cross_entropy(&[], 0).is_err());
        assert!(cross_entropy(&[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let preds = vec![
            (vec![1.0, 0.0], 0),
            (vec![0.0, 1.0], 1),
            (vec![1.0, 0.0], 1),
            (vec![0.0, 1.0], 0),
        ];
        assert_eq!(accuracy(&preds), 0.5);
        assert_eq!(accuracy(&[]), 0.0);
    }

    proptest! {
        /// The cross-entropy gradient matches a finite-difference check.
        #[test]
        fn gradient_matches_finite_difference(
            logits in proptest::collection::vec(-3.0_f32..3.0, 2..8),
            target_idx in 0_usize..8,
        ) {
            let target = target_idx % logits.len();
            let (_, grad) = cross_entropy(&logits, target).unwrap();
            let eps = 1e-3;
            for i in 0..logits.len() {
                let mut plus = logits.clone();
                plus[i] += eps;
                let mut minus = logits.clone();
                minus[i] -= eps;
                let (lp, _) = cross_entropy(&plus, target).unwrap();
                let (lm, _) = cross_entropy(&minus, target).unwrap();
                let num = (lp - lm) / (2.0 * eps);
                prop_assert!((num - grad[i]).abs() < 2e-2, "dim {i}: {num} vs {}", grad[i]);
            }
        }

        /// Softmax output is always a probability distribution.
        #[test]
        fn softmax_is_distribution(logits in proptest::collection::vec(-50.0_f32..50.0, 1..20)) {
            let p = softmax(&logits);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }
}
