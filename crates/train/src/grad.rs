//! Layer-level backward passes.
//!
//! These free functions compute the gradients of the convolution, linear and
//! spike-pooling layers given the layer input, the (possibly fake-quantized)
//! weights used in the forward pass, and the gradient flowing back from the
//! following LIF population. They recompute the im2col lowering instead of
//! caching it — a deliberate memory/compute trade-off that keeps the BPTT
//! cache small enough for CPU training.

use snn_core::error::SnnError;
use snn_core::layers::{Conv2d, Linear, SpikeMaxPool2d};
use snn_core::tensor::{matmul, matmul_a_bt, matmul_at_b, Tensor};

/// Gradients of a convolution layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvGrads {
    /// Gradient with respect to the weight tensor `[out_c, in_c, k, k]`.
    pub weight: Tensor,
    /// Gradient with respect to the bias `[out_c]`.
    pub bias: Tensor,
    /// Gradient with respect to the layer input `[in_c, h, w]`.
    pub input: Tensor,
}

/// Gradients of a linear layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGrads {
    /// Gradient with respect to the weight matrix `[out, in]`.
    pub weight: Tensor,
    /// Gradient with respect to the bias `[out]`.
    pub bias: Tensor,
    /// Gradient with respect to the layer input `[in]`.
    pub input: Tensor,
}

/// Backward pass of [`Conv2d::forward`].
///
/// `grad_output` must have the shape of the layer output `[out_c, oh, ow]`,
/// `input` the shape of the layer input `[in_c, h, w]`, and `conv` the layer
/// whose (possibly fake-quantized) weights were used in the forward pass.
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if the shapes are inconsistent.
pub fn conv2d_backward(
    conv: &Conv2d,
    input: &Tensor,
    grad_output: &Tensor,
) -> Result<ConvGrads, SnnError> {
    let out_shape = conv.output_shape(input.shape())?;
    if grad_output.shape() != out_shape {
        return Err(SnnError::shape(
            &out_shape,
            grad_output.shape(),
            "conv2d_backward grad_output",
        ));
    }
    let k = conv.kernel();
    let cols = input.im2col((k, k), conv.stride(), conv.padding())?;
    let out_c = conv.out_channels();
    let spatial = out_shape[1] * out_shape[2];
    let coeffs = conv.coefficients_per_output();

    // grad_w [out_c, coeffs] = grad_out [out_c, spatial] * cols^T [spatial, coeffs]
    let grad_w_flat = matmul_a_bt(grad_output.as_slice(), &cols.data, out_c, spatial, coeffs);
    let grad_weight = Tensor::from_vec(grad_w_flat, &[out_c, conv.in_channels(), k, k])?;

    // grad_b [out_c] = sum over spatial of grad_out.
    let mut grad_bias = vec![0.0_f32; out_c];
    for (oc, gb) in grad_bias.iter_mut().enumerate() {
        *gb = grad_output.as_slice()[oc * spatial..(oc + 1) * spatial]
            .iter()
            .sum();
    }
    let grad_bias = Tensor::from_vec(grad_bias, &[out_c])?;

    // grad_cols [coeffs, spatial] = W^T [coeffs, out_c] * grad_out [out_c, spatial]
    let grad_cols_data = matmul_at_b(
        conv.weight().as_slice(),
        grad_output.as_slice(),
        out_c,
        coeffs,
        spatial,
    );
    let grad_cols = snn_core::tensor::Im2Col {
        data: grad_cols_data,
        rows: coeffs,
        cols: spatial,
        out_h: out_shape[1],
        out_w: out_shape[2],
    };
    let grad_input = Tensor::col2im(
        &grad_cols,
        conv.in_channels(),
        input.shape()[1],
        input.shape()[2],
        (k, k),
        conv.stride(),
        conv.padding(),
    )?;

    Ok(ConvGrads {
        weight: grad_weight,
        bias: grad_bias,
        input: grad_input,
    })
}

/// Backward pass of [`Linear::forward`].
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if the shapes are inconsistent.
pub fn linear_backward(
    linear: &Linear,
    input: &Tensor,
    grad_output: &Tensor,
) -> Result<LinearGrads, SnnError> {
    if input.len() != linear.in_features() {
        return Err(SnnError::shape(
            &[linear.in_features()],
            &[input.len()],
            "linear_backward input",
        ));
    }
    if grad_output.len() != linear.out_features() {
        return Err(SnnError::shape(
            &[linear.out_features()],
            &[grad_output.len()],
            "linear_backward grad_output",
        ));
    }
    let n_in = linear.in_features();
    let n_out = linear.out_features();
    // grad_w [out, in] = grad_out [out, 1] * input^T [1, in]
    let grad_weight = Tensor::from_vec(
        matmul(grad_output.as_slice(), input.as_slice(), n_out, 1, n_in),
        &[n_out, n_in],
    )?;
    let grad_bias = Tensor::from_vec(grad_output.as_slice().to_vec(), &[n_out])?;
    // grad_x [in] = W^T [in, out] * grad_out [out]
    let grad_input = Tensor::from_vec(
        matmul_at_b(
            linear.weight().as_slice(),
            grad_output.as_slice(),
            n_out,
            n_in,
            1,
        ),
        &[n_in],
    )?;
    Ok(LinearGrads {
        weight: grad_weight,
        bias: grad_bias,
        input: grad_input,
    })
}

/// Backward pass of spike max-pooling.
///
/// On binary inputs the forward OR is equivalent to max-pooling, so the
/// gradient is routed to the first spiking position of each window (the
/// argmax), or to the window's first position when the window was silent —
/// the same convention snnTorch/PyTorch use for ties.
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if the gradient shape does not match
/// the pooled output shape.
pub fn pool_backward(
    pool: &SpikeMaxPool2d,
    input: &Tensor,
    grad_output: &Tensor,
) -> Result<Tensor, SnnError> {
    let out_shape = pool.output_shape(input.shape())?;
    if grad_output.shape() != out_shape {
        return Err(SnnError::shape(
            &out_shape,
            grad_output.shape(),
            "pool_backward grad_output",
        ));
    }
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (oh, ow) = (out_shape[1], out_shape[2]);
    let size = pool.size();
    let mut grad_input = Tensor::zeros(input.shape());
    let in_data = input.as_slice();
    let go = grad_output.as_slice();
    let gi = grad_input.as_mut_slice();
    for ci in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = go[ci * oh * ow + oy * ow + ox];
                if g == 0.0 {
                    continue;
                }
                // Find the first spiking position in the window (argmax).
                let mut target = (oy * size, ox * size);
                'search: for ky in 0..size {
                    for kx in 0..size {
                        let iy = oy * size + ky;
                        let ix = ox * size + kx;
                        if iy < h && ix < w && in_data[ci * h * w + iy * w + ix] > 0.0 {
                            target = (iy, ix);
                            break 'search;
                        }
                    }
                }
                gi[ci * h * w + target.0 * w + target.1] += g;
            }
        }
    }
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerically checks d(sum of outputs)/d(parameter) against the analytic
    /// gradient with an all-ones upstream gradient.
    fn numeric_grad(f: &mut dyn FnMut(f32) -> f32, x0: f32) -> f32 {
        let eps = 1e-3;
        (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps)
    }

    #[test]
    fn conv_weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::with_kaiming_init(2, 3, 3, 1, 1, &mut rng).unwrap();
        let input = Tensor::from_fn(&[2, 5, 5], |i| ((i as f32) * 0.17).sin());
        let out_shape = conv.output_shape(input.shape()).unwrap();
        let grad_out = Tensor::ones(&out_shape);
        let grads = conv2d_backward(&conv, &input, &grad_out).unwrap();

        // Check a handful of weight coordinates numerically.
        for &flat in &[0usize, 7, 23, 40, 53] {
            let mut perturbed = conv.clone();
            let mut f = |v: f32| {
                let mut w = conv.weight().clone();
                w.as_mut_slice()[flat] = v;
                perturbed.set_weight(w).unwrap();
                perturbed.forward(&input).unwrap().sum()
            };
            let x0 = conv.weight().as_slice()[flat];
            let num = numeric_grad(&mut f, x0);
            let ana = grads.weight.as_slice()[flat];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "weight {flat}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn conv_bias_gradient_is_spatial_sum() {
        let conv = Conv2d::new(1, 2, 3, 1, 1).unwrap();
        let input = Tensor::ones(&[1, 4, 4]);
        let mut grad_out = Tensor::zeros(&[2, 4, 4]);
        grad_out.as_mut_slice()[..16]
            .iter_mut()
            .for_each(|v| *v = 2.0);
        let grads = conv2d_backward(&conv, &input, &grad_out).unwrap();
        assert_eq!(grads.bias.as_slice(), &[32.0, 0.0]);
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::with_kaiming_init(1, 2, 3, 1, 1, &mut rng).unwrap();
        let input = Tensor::from_fn(&[1, 4, 4], |i| ((i as f32) * 0.29).cos());
        let grad_out = Tensor::ones(&conv.output_shape(input.shape()).unwrap());
        let grads = conv2d_backward(&conv, &input, &grad_out).unwrap();
        for &flat in &[0usize, 5, 10, 15] {
            let mut f = |v: f32| {
                let mut x = input.clone();
                x.as_mut_slice()[flat] = v;
                conv.forward(&x).unwrap().sum()
            };
            let num = numeric_grad(&mut f, input.as_slice()[flat]);
            let ana = grads.input.as_slice()[flat];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "input {flat}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn conv_backward_validates_shapes() {
        let conv = Conv2d::new(1, 2, 3, 1, 1).unwrap();
        let input = Tensor::zeros(&[1, 4, 4]);
        let bad_grad = Tensor::zeros(&[2, 3, 3]);
        assert!(conv2d_backward(&conv, &input, &bad_grad).is_err());
    }

    #[test]
    fn linear_gradients_match_manual_computation() {
        let mut fc = Linear::new(3, 2).unwrap();
        fc.set_weight(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap())
            .unwrap();
        let input = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).unwrap();
        let grad_out = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let grads = linear_backward(&fc, &input, &grad_out).unwrap();
        // grad_w = grad_out (outer) input.
        assert_eq!(grads.weight.as_slice(), &[0.5, -1.0, 2.0, -0.5, 1.0, -2.0]);
        assert_eq!(grads.bias.as_slice(), &[1.0, -1.0]);
        // grad_x = W^T grad_out = [1-4, 2-5, 3-6].
        assert_eq!(grads.input.as_slice(), &[-3.0, -3.0, -3.0]);
    }

    #[test]
    fn linear_backward_validates_shapes() {
        let fc = Linear::new(3, 2).unwrap();
        assert!(linear_backward(&fc, &Tensor::zeros(&[4]), &Tensor::zeros(&[2])).is_err());
        assert!(linear_backward(&fc, &Tensor::zeros(&[3]), &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn pool_backward_routes_to_spiking_position() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let mut input = Tensor::zeros(&[1, 4, 4]);
        input.set(&[0, 1, 1], 1.0).unwrap(); // window (0,0): spike at (1,1)
        input.set(&[0, 2, 3], 1.0).unwrap(); // window (1,1): spike at (2,3)
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let grad_in = pool_backward(&pool, &input, &grad_out).unwrap();
        assert_eq!(grad_in.get(&[0, 1, 1]).unwrap(), 1.0);
        assert_eq!(grad_in.get(&[0, 2, 3]).unwrap(), 4.0);
        // Silent windows route to the window's first position.
        assert_eq!(grad_in.get(&[0, 0, 2]).unwrap(), 2.0);
        assert_eq!(grad_in.get(&[0, 2, 0]).unwrap(), 3.0);
        // Total gradient mass is conserved.
        assert_eq!(grad_in.sum(), grad_out.sum());
    }

    #[test]
    fn pool_backward_validates_shapes() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let input = Tensor::zeros(&[1, 4, 4]);
        assert!(pool_backward(&pool, &input, &Tensor::zeros(&[1, 4, 4])).is_err());
    }
}
