//! Layer-level backward passes.
//!
//! These free functions compute the gradients of the convolution, linear and
//! spike-pooling layers given the layer input, the (possibly fake-quantized)
//! weights used in the forward pass, and the gradient flowing back from the
//! following LIF population.
//!
//! Two families exist side by side:
//!
//! * [`conv2d_backward`] / [`linear_backward`] / [`pool_backward`] — the
//!   allocating **reference** implementations: dense-input, fresh buffers per
//!   call. Every bitwise guarantee below is stated against them.
//! * [`conv2d_backward_into`] / [`linear_backward_into`] /
//!   [`pool_backward_into`] — the production variants the BPTT hot loop runs:
//!   they take the layer input as a [`SpikePlane`] (so binary spike frames
//!   use event-aware gather/scatter kernels), write into caller-owned
//!   [`ConvGrads`]/[`LinearGrads`] buffers and thread a [`GradScratch`], so
//!   the per-timestep backward allocates nothing in steady state. The conv
//!   input gradient runs the fused event-aware [`conv2d_input_grad_into`]
//!   kernel (cached `Wᵀ`, all-zero gradient columns skipped, matmul fused
//!   with the col2im scatter). Results are **bitwise identical** to the
//!   reference family — enforced by the proptests in this module.

use snn_core::error::SnnError;
use snn_core::layers::{Conv2d, Linear, SpikeMaxPool2d};
use snn_core::spike::{scan_words, SpikePlane};
use snn_core::tensor::{
    add_assign_lanes, matmul, matmul_a_bt, matmul_a_bt_to_with, matmul_at_b, matmul_at_b_to,
    matmul_scatter_col2im, matmul_to_with, Im2Col, Tensor,
};

/// Gradients of a convolution layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvGrads {
    /// Gradient with respect to the weight tensor `[out_c, in_c, k, k]`.
    pub weight: Tensor,
    /// Gradient with respect to the bias `[out_c]`.
    pub bias: Tensor,
    /// Gradient with respect to the layer input `[in_c, h, w]` (left untouched
    /// by the `_into` variants when the input gradient is not requested).
    pub input: Tensor,
}

/// Gradients of a linear layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearGrads {
    /// Gradient with respect to the weight matrix `[out, in]`.
    pub weight: Tensor,
    /// Gradient with respect to the bias `[out]`.
    pub bias: Tensor,
    /// Gradient with respect to the layer input, shaped like the layer input
    /// (left untouched by the `_into` variants when not requested).
    pub input: Tensor,
}

/// Reusable scratch threaded through the `_into` backward passes: the im2col
/// lowering of the layer input, the transposed-`b` repack and panel scratch
/// of the weight-gradient matmul, the active-column mask/list/panel/tile of
/// the fused input-gradient kernel ([`conv2d_input_grad_into`]), and the
/// per-window first-spike table of the event-aware pool backward. One
/// instance lives in each trainer worker's [`crate::bptt::BpttScratch`] and
/// is reused across every layer, timestep and sample that worker processes —
/// after warmup the backward performs no per-timestep heap allocation.
#[derive(Debug, Clone, Default)]
pub struct GradScratch {
    cols: Im2Col,
    bt: Vec<f32>,
    panel: Vec<f32>,
    pool_first: Vec<u32>,
    taps: Vec<(u32, u32)>,
    got: Vec<f32>,
    accw: Vec<f32>,
    col_mask: Vec<u64>,
    col_active: Vec<u32>,
    col_pos: Vec<(u32, u32)>,
    go_panel: Vec<f32>,
    grad_tile: Vec<f32>,
}

impl GradScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        GradScratch::default()
    }
}

/// The im2col lowering of a **replayed** input (direct coding presents the
/// identical frame at every timestep), prepared once per sample and consumed
/// by [`conv2d_backward_cached`] at every timestep. The columns are stored
/// pre-transposed into the `[spatial, coeffs]` layout the blocked
/// weight-gradient matmul consumes, so neither the lowering nor the
/// per-timestep `bᵀ` repack is repaid inside the time loop.
#[derive(Debug, Clone, Default)]
pub struct CachedLowering {
    /// `[spatial, coeffs]` row-major — the transpose of the im2col matrix.
    bt: Vec<f32>,
    rows: usize,
    cols: usize,
    staging: Im2Col,
}

impl CachedLowering {
    /// Creates an empty cache; [`CachedLowering::prepare`] fills it.
    pub fn new() -> Self {
        CachedLowering::default()
    }

    /// Lowers `input` for `conv` (event gather or dense scan, dispatched by
    /// density like [`Conv2d::lower_plane_into`]) and transposes the columns
    /// into the matmul-ready layout, reusing this cache's buffers.
    ///
    /// # Errors
    ///
    /// Same as [`Tensor::im2col`].
    pub fn prepare(&mut self, conv: &Conv2d, input: &SpikePlane) -> Result<(), SnnError> {
        conv.lower_plane_into(input, &mut self.staging)?;
        self.rows = self.staging.rows;
        self.cols = self.staging.cols;
        self.bt.clear();
        self.bt.resize(self.rows * self.cols, 0.0);
        for (p, row) in self.staging.data.chunks_exact(self.cols).enumerate() {
            for (s, &v) in row.iter().enumerate() {
                self.bt[s * self.rows + p] = v;
            }
        }
        Ok(())
    }
}

/// Backward pass of [`Conv2d::forward`].
///
/// `grad_output` must have the shape of the layer output `[out_c, oh, ow]`,
/// `input` the shape of the layer input `[in_c, h, w]`, and `conv` the layer
/// whose (possibly fake-quantized) weights were used in the forward pass.
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if the shapes are inconsistent.
pub fn conv2d_backward(
    conv: &Conv2d,
    input: &Tensor,
    grad_output: &Tensor,
) -> Result<ConvGrads, SnnError> {
    let out_shape = conv.output_shape(input.shape())?;
    if grad_output.shape() != out_shape {
        return Err(SnnError::shape(
            &out_shape,
            grad_output.shape(),
            "conv2d_backward grad_output",
        ));
    }
    let k = conv.kernel();
    let cols = input.im2col((k, k), conv.stride(), conv.padding())?;
    let out_c = conv.out_channels();
    let spatial = out_shape[1] * out_shape[2];
    let coeffs = conv.coefficients_per_output();

    // grad_w [out_c, coeffs] = grad_out [out_c, spatial] * cols^T [spatial, coeffs]
    let grad_w_flat = matmul_a_bt(grad_output.as_slice(), &cols.data, out_c, spatial, coeffs);
    let grad_weight = Tensor::from_vec(grad_w_flat, &[out_c, conv.in_channels(), k, k])?;

    // grad_b [out_c] = sum over spatial of grad_out.
    let mut grad_bias = vec![0.0_f32; out_c];
    for (oc, gb) in grad_bias.iter_mut().enumerate() {
        *gb = grad_output.as_slice()[oc * spatial..(oc + 1) * spatial]
            .iter()
            .sum();
    }
    let grad_bias = Tensor::from_vec(grad_bias, &[out_c])?;

    // grad_cols [coeffs, spatial] = W^T [coeffs, out_c] * grad_out [out_c, spatial]
    let grad_cols_data = matmul_at_b(
        conv.weight().as_slice(),
        grad_output.as_slice(),
        out_c,
        coeffs,
        spatial,
    );
    let grad_cols = snn_core::tensor::Im2Col {
        data: grad_cols_data,
        rows: coeffs,
        cols: spatial,
        out_h: out_shape[1],
        out_w: out_shape[2],
    };
    let grad_input = Tensor::col2im(
        &grad_cols,
        conv.in_channels(),
        input.shape()[1],
        input.shape()[2],
        (k, k),
        conv.stride(),
        conv.padding(),
    )?;

    Ok(ConvGrads {
        weight: grad_weight,
        bias: grad_bias,
        input: grad_input,
    })
}

/// Backward pass of [`Linear::forward`].
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if the shapes are inconsistent.
pub fn linear_backward(
    linear: &Linear,
    input: &Tensor,
    grad_output: &Tensor,
) -> Result<LinearGrads, SnnError> {
    if input.len() != linear.in_features() {
        return Err(SnnError::shape(
            &[linear.in_features()],
            &[input.len()],
            "linear_backward input",
        ));
    }
    if grad_output.len() != linear.out_features() {
        return Err(SnnError::shape(
            &[linear.out_features()],
            &[grad_output.len()],
            "linear_backward grad_output",
        ));
    }
    let n_in = linear.in_features();
    let n_out = linear.out_features();
    // grad_w [out, in] = grad_out [out, 1] * input^T [1, in]
    let grad_weight = Tensor::from_vec(
        matmul(grad_output.as_slice(), input.as_slice(), n_out, 1, n_in),
        &[n_out, n_in],
    )?;
    let grad_bias = Tensor::from_vec(grad_output.as_slice().to_vec(), &[n_out])?;
    // grad_x [in] = W^T [in, out] * grad_out [out]
    let grad_input = Tensor::from_vec(
        matmul_at_b(
            linear.weight().as_slice(),
            grad_output.as_slice(),
            n_out,
            n_in,
            1,
        ),
        &[n_in],
    )?;
    Ok(LinearGrads {
        weight: grad_weight,
        bias: grad_bias,
        input: grad_input,
    })
}

/// Backward pass of spike max-pooling.
///
/// On binary inputs the forward OR is equivalent to max-pooling, so the
/// gradient is routed to the first spiking position of each window (the
/// argmax), or to the window's first position when the window was silent —
/// the same convention snnTorch/PyTorch use for ties.
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if the gradient shape does not match
/// the pooled output shape.
pub fn pool_backward(
    pool: &SpikeMaxPool2d,
    input: &Tensor,
    grad_output: &Tensor,
) -> Result<Tensor, SnnError> {
    let out_shape = pool.output_shape(input.shape())?;
    if grad_output.shape() != out_shape {
        return Err(SnnError::shape(
            &out_shape,
            grad_output.shape(),
            "pool_backward grad_output",
        ));
    }
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (oh, ow) = (out_shape[1], out_shape[2]);
    let size = pool.size();
    let mut grad_input = Tensor::zeros(input.shape());
    let in_data = input.as_slice();
    let go = grad_output.as_slice();
    let gi = grad_input.as_mut_slice();
    for ci in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = go[ci * oh * ow + oy * ow + ox];
                if g == 0.0 {
                    continue;
                }
                // Find the first spiking position in the window (argmax).
                let mut target = (oy * size, ox * size);
                'search: for ky in 0..size {
                    for kx in 0..size {
                        let iy = oy * size + ky;
                        let ix = ox * size + kx;
                        if iy < h && ix < w && in_data[ci * h * w + iy * w + ix] > 0.0 {
                            target = (iy, ix);
                            break 'search;
                        }
                    }
                }
                gi[ci * h * w + target.0 * w + target.1] += g;
            }
        }
    }
    Ok(grad_input)
}

/// Scratch-backed, event-aware variant of [`conv2d_backward`]: writes the
/// gradients into the caller-owned `grads` buffer, reusing every
/// intermediate from `scratch`. When `need_input` is false the
/// input-gradient matmul and col2im are skipped entirely (the first network
/// layer's input gradient is never consumed) and `grads.input` is left
/// untouched.
///
/// For a binary input below the layer's density crossover the weight
/// gradient is computed **straight from the spike events** — no im2col
/// lowering, no `bᵀ` repack, no dense matmul: each `(spike, tap)` pair adds
/// one `grad_output` column into one weight row. This drops exactly the
/// products with a zero multiplicand, which cannot change an IEEE-754 sum
/// accumulated from `+0.0` in round-to-nearest (a running sum can never be
/// `-0.0`, and `t + ±0.0 == t` otherwise), so on the finite gradients the
/// training path produces the result is **bitwise identical** to
/// [`conv2d_backward`] — enforced by proptest. Denser or analog inputs take
/// the dense lowering + blocked matmul, which is bit-identical by
/// construction.
///
/// # Errors
///
/// Same as [`conv2d_backward`].
pub fn conv2d_backward_into(
    conv: &Conv2d,
    input: &SpikePlane,
    grad_output: &Tensor,
    scratch: &mut GradScratch,
    grads: &mut ConvGrads,
    need_input: bool,
) -> Result<(), SnnError> {
    let out_shape = conv.output_shape(input.shape())?;
    if grad_output.shape() != out_shape {
        return Err(SnnError::shape(
            &out_shape,
            grad_output.shape(),
            "conv2d_backward grad_output",
        ));
    }
    let out_c = conv.out_channels();
    let spatial = out_shape[1] * out_shape[2];
    let coeffs = conv.coefficients_per_output();

    // grad_w [out_c, coeffs] = grad_out [out_c, spatial] * cols^T [spatial, coeffs]
    grads.weight.reset_to(conv.weight().shape(), 0.0);
    if input.is_binary() && input.density() < conv.sparse_crossover() {
        // Event path: transpose grad_out once into a [cell][out_c] layout,
        // then each tap is ONE contiguous vector add of a grad_out column
        // into a weight row (for every output channel simultaneously) —
        // mirroring the event-driven forward's accumulation layout. Taps
        // arrive grouped by spike in ascending tap order, so per weight cell
        // the output cells ascend: the matmul's accumulation order, minus
        // its zero products.
        conv.gather_taps(input, &mut scratch.taps)?;
        let got = &mut scratch.got;
        got.clear();
        got.resize(spatial * out_c, 0.0);
        for (oc, row) in grad_output.as_slice().chunks_exact(spatial).enumerate() {
            for (s, &v) in row.iter().enumerate() {
                got[s * out_c + oc] = v;
            }
        }
        let accw = &mut scratch.accw;
        accw.clear();
        accw.resize(coeffs * out_c, 0.0);
        for &(p, s) in scratch.taps.iter() {
            let wrow = &mut accw[p as usize * out_c..(p as usize + 1) * out_c];
            let grow = &scratch.got[s as usize * out_c..(s as usize + 1) * out_c];
            add_assign_lanes(wrow, grow);
        }
        let w_out = grads.weight.as_mut_slice();
        for (p, wrow) in scratch.accw.chunks_exact(out_c).enumerate() {
            for (oc, &v) in wrow.iter().enumerate() {
                w_out[oc * coeffs + p] = v;
            }
        }
    } else {
        conv.lower_plane_into(input, &mut scratch.cols)?;
        matmul_a_bt_to_with(
            grad_output.as_slice(),
            &scratch.cols.data,
            out_c,
            spatial,
            coeffs,
            grads.weight.as_mut_slice(),
            &mut scratch.bt,
            &mut scratch.panel,
        );
    }
    conv_bias_and_input_grads(
        conv,
        input.shape(),
        grad_output,
        &out_shape,
        scratch,
        grads,
        need_input,
    )
}

/// Like [`conv2d_backward_into`] but with the input's lowering supplied by a
/// [`CachedLowering`] prepared once per sample — the BPTT backward uses this
/// to reuse one transposed lowering across every timestep of a replayed
/// (direct-coded) input instead of re-lowering and re-transposing the
/// identical frame `T` times. `input_shape` is the `[in_c, h, w]` shape of
/// the layer input the lowering was built from.
///
/// # Errors
///
/// Same as [`conv2d_backward`], plus [`SnnError::ShapeMismatch`] if the
/// lowering does not match the layer's geometry for `input_shape`.
pub fn conv2d_backward_cached(
    conv: &Conv2d,
    lowering: &CachedLowering,
    input_shape: &[usize],
    grad_output: &Tensor,
    scratch: &mut GradScratch,
    grads: &mut ConvGrads,
    need_input: bool,
) -> Result<(), SnnError> {
    let out_shape = conv.output_shape(input_shape)?;
    if grad_output.shape() != out_shape {
        return Err(SnnError::shape(
            &out_shape,
            grad_output.shape(),
            "conv2d_backward grad_output",
        ));
    }
    let out_c = conv.out_channels();
    let spatial = out_shape[1] * out_shape[2];
    let coeffs = conv.coefficients_per_output();
    if lowering.rows != coeffs || lowering.cols != spatial {
        return Err(SnnError::shape(
            &[coeffs, spatial],
            &[lowering.rows, lowering.cols],
            "conv2d_backward_cached lowering",
        ));
    }
    // grad_w: the blocked kernel straight over the pre-transposed columns —
    // exactly what `matmul_a_bt` computes after its per-call repack.
    grads.weight.reset_to(conv.weight().shape(), 0.0);
    matmul_to_with(
        grad_output.as_slice(),
        &lowering.bt,
        out_c,
        spatial,
        coeffs,
        grads.weight.as_mut_slice(),
        &mut scratch.panel,
    );
    conv_bias_and_input_grads(
        conv,
        input_shape,
        grad_output,
        &out_shape,
        scratch,
        grads,
        need_input,
    )
}

/// The fused, event-aware input-gradient kernel of the convolution backward:
/// computes `grad_input = col2im(Wᵀ · grad_out)` in one pass, writing into
/// the caller-owned `grad_input` tensor.
///
/// Three exploits over the unfused [`matmul_at_b`] + [`Tensor::col2im`]
/// reference, all bit-safe:
///
/// * **Cached `Wᵀ`** — the matmul's left operand is the layer's cached
///   transposed filter bank ([`Conv2d::transposed_weight`], warmed once per
///   batch by [`crate::bptt::Bptt::prepare`]), so the transposed-weight
///   product runs the blocked row-tiled [`matmul_to_with`] micro-kernel
///   instead of the scalar `matmul_at_b` loop — no per-call transpose.
/// * **All-zero gradient columns are skipped** — one scan of `grad_output`
///   finds the output cells whose gradient is zero across every channel.
///   Such columns arise from the event structure of the backward itself: the
///   pool backward routes gradient only to each window's first spike (taken
///   from the stored [`SpikePlane`] active lists), and the final timestep
///   has no β-carry to densify it, so whole columns of the incoming frame
///   are exact zeros. Their products are all `±0.0`, which a sum accumulated
///   from `+0.0` can never observe, so dropping them is bitwise-neutral.
/// * **Fusion** — the surviving columns are packed once, multiplied four
///   weight rows at a time, and each finished row tile is scattered straight
///   into the input-gradient plane in col2im's exact `(channel, ky, kx, oy,
///   ox)` accumulation order: the `[coeffs, spatial]` gradient-column matrix
///   is never materialised.
///
/// **Bitwise identical** to the retained dense reference (the
/// `matmul_at_b` + `col2im` tail of [`conv2d_backward`]) on the finite
/// gradients the training path produces — enforced by the proptests in this
/// module.
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if `grad_output` does not match the
/// layer's output shape for `input_shape`.
pub fn conv2d_input_grad_into(
    conv: &Conv2d,
    input_shape: &[usize],
    grad_output: &Tensor,
    scratch: &mut GradScratch,
    grad_input: &mut Tensor,
) -> Result<(), SnnError> {
    let out_shape = conv.output_shape(input_shape)?;
    if grad_output.shape() != out_shape {
        return Err(SnnError::shape(
            &out_shape,
            grad_output.shape(),
            "conv2d_input_grad grad_output",
        ));
    }
    let spatial = out_shape[1] * out_shape[2];
    let go = grad_output.as_slice();
    // One pass over the gradient frame marks every output cell that carries
    // gradient in at least one channel; the fused kernel only computes and
    // scatters those columns. The mark bits are packed into the same
    // LSB-first `u64` mask-word layout [`SpikePlane`] uses, built
    // branch-free 64 cells at a time and extracted with the shared
    // [`scan_words`] trailing-zeros walk.
    let mask = &mut scratch.col_mask;
    mask.clear();
    mask.resize(spatial.div_ceil(64), 0);
    for row in go.chunks_exact(spatial) {
        for (m, chunk) in mask.iter_mut().zip(row.chunks(64)) {
            let mut bits = 0_u64;
            for (b, &v) in chunk.iter().enumerate() {
                bits |= u64::from(v != 0.0) << b;
            }
            *m |= bits;
        }
    }
    let active = &mut scratch.col_active;
    active.clear();
    active.extend(scan_words(&scratch.col_mask).map(|s| s as u32));
    // Shape the output buffer only when it changes (between layers); the
    // kernel overwrites every cell, so re-zeroing it per timestep here would
    // just double the memset.
    if grad_input.shape() != input_shape {
        grad_input.reset_to(input_shape, 0.0);
    }
    let k = conv.kernel();
    matmul_scatter_col2im(
        conv.transposed_weight(),
        go,
        active,
        conv.out_channels(),
        spatial,
        input_shape[0],
        input_shape[1],
        input_shape[2],
        (k, k),
        conv.stride(),
        conv.padding(),
        out_shape[2],
        &mut scratch.go_panel,
        &mut scratch.col_pos,
        &mut scratch.grad_tile,
        grad_input.as_mut_slice(),
    );
    Ok(())
}

/// Shared tail of the scratch-backed conv backward: the bias gradient and
/// (when requested) the input gradient via the fused
/// [`conv2d_input_grad_into`] kernel. Accumulation orders are exactly those
/// of [`conv2d_backward`], so results stay bitwise identical.
fn conv_bias_and_input_grads(
    conv: &Conv2d,
    input_shape: &[usize],
    grad_output: &Tensor,
    out_shape: &[usize; 3],
    scratch: &mut GradScratch,
    grads: &mut ConvGrads,
    need_input: bool,
) -> Result<(), SnnError> {
    let out_c = conv.out_channels();
    let spatial = out_shape[1] * out_shape[2];

    // grad_b [out_c] = sum over spatial of grad_out.
    grads.bias.reset_to(&[out_c], 0.0);
    for (oc, gb) in grads.bias.as_mut_slice().iter_mut().enumerate() {
        *gb = grad_output.as_slice()[oc * spatial..(oc + 1) * spatial]
            .iter()
            .sum();
    }

    if need_input {
        conv2d_input_grad_into(conv, input_shape, grad_output, scratch, &mut grads.input)?;
    }
    Ok(())
}

/// Scratch-backed, event-aware variant of [`linear_backward`]: writes into
/// the caller-owned `grads` buffer without allocating. For a binary spike
/// input the weight gradient is a gather — each input column found by
/// word-scanning the plane's mask words receives the output gradient directly
/// instead of the dense rank-1 matmul touching all `out × in` cells — which
/// is bitwise identical to the matmul
/// formulation on finite gradients (the kernel's zero-skip and
/// accumulate-from-zero semantics are reproduced exactly). The input gradient
/// is written with the shape of the layer input (the reference's reshape
/// step, without the copy) and skipped when `need_input` is false.
///
/// # Errors
///
/// Same as [`linear_backward`].
pub fn linear_backward_into(
    linear: &Linear,
    input: &SpikePlane,
    grad_output: &Tensor,
    scratch: &mut GradScratch,
    grads: &mut LinearGrads,
    need_input: bool,
) -> Result<(), SnnError> {
    let n_in = linear.in_features();
    let n_out = linear.out_features();
    if input.len() != n_in {
        return Err(SnnError::shape(
            &[n_in],
            &[input.len()],
            "linear_backward input",
        ));
    }
    if grad_output.len() != n_out {
        return Err(SnnError::shape(
            &[n_out],
            &[grad_output.len()],
            "linear_backward grad_output",
        ));
    }
    let go = grad_output.as_slice();
    // grad_w [out, in] = grad_out [out, 1] * input^T [1, in]
    grads.weight.reset_to(&[n_out, n_in], 0.0);
    if input.is_binary() {
        let w = grads.weight.as_mut_slice();
        for (o, &g) in go.iter().enumerate() {
            if g == 0.0 {
                continue; // the matmul kernel's zero-row skip
            }
            let row = &mut w[o * n_in..(o + 1) * n_in];
            for i in input.iter_active() {
                // `0.0 + g` (not plain `g`): the matmul accumulates each cell
                // from a 0.0 start, which turns a -0.0 gradient into +0.0.
                row[i] = 0.0 + g;
            }
        }
    } else {
        matmul_to_with(
            go,
            input.dense().as_slice(),
            n_out,
            1,
            n_in,
            grads.weight.as_mut_slice(),
            &mut scratch.panel,
        );
    }
    grads.bias.reset_to(&[n_out], 0.0);
    grads.bias.as_mut_slice().copy_from_slice(go);
    if need_input {
        // grad_x = W^T [in, out] * grad_out [out], shaped like the input.
        grads.input.reset_to(input.shape(), 0.0);
        matmul_at_b_to(
            linear.weight().as_slice(),
            go,
            n_out,
            n_in,
            1,
            grads.input.as_mut_slice(),
        );
    }
    Ok(())
}

/// Scratch-backed, event-aware variant of [`pool_backward`]: writes the input
/// gradient into the caller-owned `out` tensor. For a binary spike input the
/// per-window argmax comes from word-scanning the plane's `u64` mask words —
/// the first spike falling in a window in ascending flat order is exactly the
/// first spiking position the dense window scan finds — via a per-window
/// first-spike table kept in `scratch`, so silent regions are never scanned.
/// Analog planes fall back to the dense window scan. Bitwise identical to
/// [`pool_backward`] on the plane's dense backing.
///
/// # Errors
///
/// Same as [`pool_backward`].
pub fn pool_backward_into(
    pool: &SpikeMaxPool2d,
    input: &SpikePlane,
    grad_output: &Tensor,
    scratch: &mut GradScratch,
    out: &mut Tensor,
) -> Result<(), SnnError> {
    let out_shape = pool.output_shape(input.shape())?;
    if grad_output.shape() != out_shape {
        return Err(SnnError::shape(
            &out_shape,
            grad_output.shape(),
            "pool_backward grad_output",
        ));
    }
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (oh, ow) = (out_shape[1], out_shape[2]);
    let size = pool.size();
    out.reset_to(input.shape(), 0.0);
    let go = grad_output.as_slice();
    let gi = out.as_mut_slice();
    if input.is_binary() {
        // Pass 1: record each window's first spike (ascending flat order ==
        // the dense scan's row-major window order). u32::MAX marks a silent
        // window; real flat indices never reach it at these tensor sizes.
        let first = &mut scratch.pool_first;
        first.clear();
        first.resize(c * oh * ow, u32::MAX);
        for f in input.iter_active() {
            let ci = f / (h * w);
            let rem = f % (h * w);
            let (oy, ox) = (rem / w / size, rem % w / size);
            // Floor division drops partial windows at the bottom/right edge,
            // exactly like the dense scan.
            if oy < oh && ox < ow {
                let slot = &mut first[ci * oh * ow + oy * ow + ox];
                if *slot == u32::MAX {
                    *slot = f as u32;
                }
            }
        }
        // Pass 2: route each output gradient to its window's target.
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[ci * oh * ow + oy * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    let slot = first[ci * oh * ow + oy * ow + ox];
                    let target = if slot != u32::MAX {
                        slot as usize
                    } else {
                        // Silent window: the window's first position.
                        ci * h * w + (oy * size) * w + ox * size
                    };
                    gi[target] += g;
                }
            }
        }
    } else {
        // Analog fallback: the reference's dense window scan.
        let in_data = input.dense().as_slice();
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[ci * oh * ow + oy * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    let mut target = (oy * size, ox * size);
                    'search: for ky in 0..size {
                        for kx in 0..size {
                            let iy = oy * size + ky;
                            let ix = ox * size + kx;
                            if iy < h && ix < w && in_data[ci * h * w + iy * w + ix] > 0.0 {
                                target = (iy, ix);
                                break 'search;
                            }
                        }
                    }
                    gi[ci * h * w + target.0 * w + target.1] += g;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerically checks d(sum of outputs)/d(parameter) against the analytic
    /// gradient with an all-ones upstream gradient.
    fn numeric_grad(f: &mut dyn FnMut(f32) -> f32, x0: f32) -> f32 {
        let eps = 1e-3;
        (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps)
    }

    #[test]
    fn conv_weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::with_kaiming_init(2, 3, 3, 1, 1, &mut rng).unwrap();
        let input = Tensor::from_fn(&[2, 5, 5], |i| ((i as f32) * 0.17).sin());
        let out_shape = conv.output_shape(input.shape()).unwrap();
        let grad_out = Tensor::ones(&out_shape);
        let grads = conv2d_backward(&conv, &input, &grad_out).unwrap();

        // Check a handful of weight coordinates numerically.
        for &flat in &[0usize, 7, 23, 40, 53] {
            let mut perturbed = conv.clone();
            let mut f = |v: f32| {
                let mut w = conv.weight().clone();
                w.as_mut_slice()[flat] = v;
                perturbed.set_weight(w).unwrap();
                perturbed.forward(&input).unwrap().sum()
            };
            let x0 = conv.weight().as_slice()[flat];
            let num = numeric_grad(&mut f, x0);
            let ana = grads.weight.as_slice()[flat];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "weight {flat}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn conv_bias_gradient_is_spatial_sum() {
        let conv = Conv2d::new(1, 2, 3, 1, 1).unwrap();
        let input = Tensor::ones(&[1, 4, 4]);
        let mut grad_out = Tensor::zeros(&[2, 4, 4]);
        grad_out.as_mut_slice()[..16]
            .iter_mut()
            .for_each(|v| *v = 2.0);
        let grads = conv2d_backward(&conv, &input, &grad_out).unwrap();
        assert_eq!(grads.bias.as_slice(), &[32.0, 0.0]);
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::with_kaiming_init(1, 2, 3, 1, 1, &mut rng).unwrap();
        let input = Tensor::from_fn(&[1, 4, 4], |i| ((i as f32) * 0.29).cos());
        let grad_out = Tensor::ones(&conv.output_shape(input.shape()).unwrap());
        let grads = conv2d_backward(&conv, &input, &grad_out).unwrap();
        for &flat in &[0usize, 5, 10, 15] {
            let mut f = |v: f32| {
                let mut x = input.clone();
                x.as_mut_slice()[flat] = v;
                conv.forward(&x).unwrap().sum()
            };
            let num = numeric_grad(&mut f, input.as_slice()[flat]);
            let ana = grads.input.as_slice()[flat];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "input {flat}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn conv_backward_validates_shapes() {
        let conv = Conv2d::new(1, 2, 3, 1, 1).unwrap();
        let input = Tensor::zeros(&[1, 4, 4]);
        let bad_grad = Tensor::zeros(&[2, 3, 3]);
        assert!(conv2d_backward(&conv, &input, &bad_grad).is_err());
    }

    #[test]
    fn linear_gradients_match_manual_computation() {
        let mut fc = Linear::new(3, 2).unwrap();
        fc.set_weight(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap())
            .unwrap();
        let input = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).unwrap();
        let grad_out = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let grads = linear_backward(&fc, &input, &grad_out).unwrap();
        // grad_w = grad_out (outer) input.
        assert_eq!(grads.weight.as_slice(), &[0.5, -1.0, 2.0, -0.5, 1.0, -2.0]);
        assert_eq!(grads.bias.as_slice(), &[1.0, -1.0]);
        // grad_x = W^T grad_out = [1-4, 2-5, 3-6].
        assert_eq!(grads.input.as_slice(), &[-3.0, -3.0, -3.0]);
    }

    #[test]
    fn linear_backward_validates_shapes() {
        let fc = Linear::new(3, 2).unwrap();
        assert!(linear_backward(&fc, &Tensor::zeros(&[4]), &Tensor::zeros(&[2])).is_err());
        assert!(linear_backward(&fc, &Tensor::zeros(&[3]), &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn pool_backward_routes_to_spiking_position() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let mut input = Tensor::zeros(&[1, 4, 4]);
        input.set(&[0, 1, 1], 1.0).unwrap(); // window (0,0): spike at (1,1)
        input.set(&[0, 2, 3], 1.0).unwrap(); // window (1,1): spike at (2,3)
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let grad_in = pool_backward(&pool, &input, &grad_out).unwrap();
        assert_eq!(grad_in.get(&[0, 1, 1]).unwrap(), 1.0);
        assert_eq!(grad_in.get(&[0, 2, 3]).unwrap(), 4.0);
        // Silent windows route to the window's first position.
        assert_eq!(grad_in.get(&[0, 0, 2]).unwrap(), 2.0);
        assert_eq!(grad_in.get(&[0, 2, 0]).unwrap(), 3.0);
        // Total gradient mass is conserved.
        assert_eq!(grad_in.sum(), grad_out.sum());
    }

    #[test]
    fn pool_backward_validates_shapes() {
        let pool = SpikeMaxPool2d::new(2).unwrap();
        let input = Tensor::zeros(&[1, 4, 4]);
        assert!(pool_backward(&pool, &input, &Tensor::zeros(&[1, 4, 4])).is_err());
        let mut scratch = GradScratch::new();
        let mut out = Tensor::default();
        assert!(pool_backward_into(
            &pool,
            &SpikePlane::from_tensor(&input),
            &Tensor::zeros(&[1, 4, 4]),
            &mut scratch,
            &mut out,
        )
        .is_err());
    }

    /// Deterministic gradient tensor with planted exact zeros (±0.0), the
    /// regime where the zero-skip semantics of the kernels must agree.
    fn grad_tensor(shape: &[usize], seed: usize) -> Tensor {
        Tensor::from_fn(shape, |i| {
            let h = (i + seed).wrapping_mul(2_654_435_761) % 1000;
            if h < 150 {
                0.0
            } else if h < 300 {
                -0.0
            } else {
                (h as f32 - 600.0) * 1e-3
            }
        })
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor, ctx: &str) {
        assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: cell {i}: {x} vs {y}");
        }
    }

    proptest! {
        /// The scratch-backed event-aware conv backward is bitwise identical
        /// to the allocating dense reference across ragged geometries
        /// (stride > 1, padding > 0, h/w not divisible by anything), binary
        /// and analog inputs, with one scratch reused across all cases.
        #[test]
        fn conv2d_backward_into_bitwise_equals_reference(
            seed in 0_u64..500,
            h in 4_usize..8,
            w in 4_usize..8,
            stride in 1_usize..3,
            padding in 0_usize..2,
            binary in proptest::collection::vec(any::<bool>(), 2 * 7 * 7),
            analog in any::<bool>(),
            sparse in any::<bool>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let conv = Conv2d::with_kaiming_init(2, 3, 3, stride, padding, &mut rng).unwrap();
            // `sparse` thins the binary frame below the event crossover so
            // the gather weight-gradient kernel is exercised; otherwise the
            // ~50% density takes the dense lowering.
            let input = Tensor::from_fn(&[2, h, w], |i| {
                if analog {
                    ((i as f32) * 0.19).sin() * 0.5
                } else if binary[i % binary.len()] && (!sparse || i % 7 == 0) {
                    1.0
                } else {
                    0.0
                }
            });
            let grad_out = grad_tensor(&conv.output_shape(input.shape()).unwrap(), seed as usize);
            let reference = conv2d_backward(&conv, &input, &grad_out).unwrap();
            let mut scratch = GradScratch::new();
            let mut grads = ConvGrads::default();
            conv2d_backward_into(
                &conv,
                &SpikePlane::from_tensor(&input),
                &grad_out,
                &mut scratch,
                &mut grads,
                true,
            )
            .unwrap();
            assert_bits_eq(&grads.weight, &reference.weight, "weight");
            assert_bits_eq(&grads.bias, &reference.bias, "bias");
            assert_bits_eq(&grads.input, &reference.input, "input");
            // The cached-lowering entry point agrees too.
            let mut lowering = CachedLowering::new();
            lowering
                .prepare(&conv, &SpikePlane::from_tensor(&input))
                .unwrap();
            let mut cached = ConvGrads::default();
            conv2d_backward_cached(
                &conv,
                &lowering,
                input.shape(),
                &grad_out,
                &mut scratch,
                &mut cached,
                true,
            )
            .unwrap();
            assert_bits_eq(&cached.weight, &reference.weight, "cached weight");
            assert_bits_eq(&cached.bias, &reference.bias, "cached bias");
            assert_bits_eq(&cached.input, &reference.input, "cached input");
        }

        /// The fused input-gradient kernel is bitwise identical to the
        /// retained dense reference tail (`matmul_at_b` + `col2im` inside
        /// [`conv2d_backward`]) across ragged geometries, strides and
        /// paddings, for gradient frames with planted exact ±0.0 and whole
        /// all-zero columns (the case the kernel skips), including the
        /// everything-zero and nothing-zero extremes — with one scratch
        /// reused across all cases.
        #[test]
        fn conv2d_input_grad_into_bitwise_equals_reference(
            seed in 0_u64..500,
            h in 3_usize..8,
            w in 3_usize..8,
            stride in 1_usize..3,
            padding in 0_usize..2,
            keep in proptest::collection::vec(any::<bool>(), 49),
            all_mode in 0_usize..3,
            negzero in any::<bool>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let conv = Conv2d::with_kaiming_init(2, 3, 3, stride, padding, &mut rng).unwrap();
            let input_shape = [2_usize, h, w];
            let out_shape = conv.output_shape(&input_shape).unwrap();
            let spatial = out_shape[1] * out_shape[2];
            // Gradient with whole output columns zeroed by `keep` (mode 0),
            // or entirely kept/zeroed (modes 1/2).
            let keep_col = |s: usize| match all_mode {
                1 => true,
                2 => false,
                _ => keep[s % keep.len()],
            };
            let grad_out = Tensor::from_fn(&out_shape, |i| {
                if keep_col(i % spatial) {
                    grad_tensor(&[1], i).as_slice()[0]
                } else if negzero {
                    -0.0
                } else {
                    0.0
                }
            });
            let input = Tensor::from_fn(&input_shape, |i| f32::from(i % 3 == 0));
            let reference = conv2d_backward(&conv, &input, &grad_out).unwrap();
            let mut scratch = GradScratch::new();
            let mut grad_input = Tensor::default();
            conv2d_input_grad_into(&conv, &input_shape, &grad_out, &mut scratch, &mut grad_input)
                .unwrap();
            assert_bits_eq(&grad_input, &reference.input, "fused input grad");
            // Shape validation mirrors the reference.
            let bad = Tensor::zeros(&[out_shape[0], out_shape[1] + 1, out_shape[2]]);
            prop_assert!(conv2d_input_grad_into(
                &conv, &input_shape, &bad, &mut scratch, &mut grad_input
            )
            .is_err());
        }

        /// Scratch-backed linear backward (event-aware gather weight
        /// gradient) is bitwise identical to the allocating reference, for
        /// binary and analog inputs and gradients containing exact ±0.0.
        #[test]
        fn linear_backward_into_bitwise_equals_reference(
            seed in 0_u64..500,
            bits in proptest::collection::vec(any::<bool>(), 18),
            analog in any::<bool>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let fc = Linear::with_kaiming_init(18, 5, &mut rng).unwrap();
            let input = Tensor::from_fn(&[18], |i| {
                if analog {
                    ((i as f32) * 0.37).cos() * 0.4
                } else if bits[i] {
                    1.0
                } else {
                    0.0
                }
            });
            let grad_out = grad_tensor(&[5], seed as usize + 7);
            let reference = linear_backward(&fc, &input, &grad_out).unwrap();
            let mut scratch = GradScratch::new();
            let mut grads = LinearGrads::default();
            linear_backward_into(
                &fc,
                &SpikePlane::from_tensor(&input),
                &grad_out,
                &mut scratch,
                &mut grads,
                true,
            )
            .unwrap();
            assert_bits_eq(&grads.weight, &reference.weight, "weight");
            assert_bits_eq(&grads.bias, &reference.bias, "bias");
            assert_bits_eq(&grads.input, &reference.input, "input");
        }

        /// Event-aware pool backward is bitwise identical to the dense window
        /// rescan on ragged maps (h/w not divisible by the window), and the
        /// routed gradient mass is conserved.
        #[test]
        fn pool_backward_into_bitwise_equals_reference_and_conserves_mass(
            bits in proptest::collection::vec(any::<bool>(), 2 * 7 * 7),
            h in 4_usize..8,
            w in 4_usize..8,
            size in 2_usize..4,
            seed in 0_usize..500,
            analog in any::<bool>(),
        ) {
            // h, w >= 4 > size <= 3, so the window always fits.
            let pool = SpikeMaxPool2d::new(size).unwrap();
            let input = Tensor::from_fn(&[2, h, w], |i| {
                if analog {
                    ((i + seed).wrapping_mul(97) % 7) as f32 * 0.1
                } else if bits[i % bits.len()] {
                    1.0
                } else {
                    0.0
                }
            });
            let out_shape = pool.output_shape(input.shape()).unwrap();
            let grad_out = grad_tensor(&out_shape, seed);
            let reference = pool_backward(&pool, &input, &grad_out).unwrap();
            let mut scratch = GradScratch::new();
            let mut out = Tensor::default();
            pool_backward_into(
                &pool,
                &SpikePlane::from_tensor(&input),
                &grad_out,
                &mut scratch,
                &mut out,
            )
            .unwrap();
            assert_bits_eq(&out, &reference, "pool grad");
            // Gradient-mass conservation: every output gradient is routed to
            // exactly one input cell, so the totals agree (f64 to keep the
            // comparison independent of summation order).
            let mass_in: f64 = out.as_slice().iter().map(|&v| f64::from(v)).sum();
            let mass_out: f64 = grad_out.as_slice().iter().map(|&v| f64::from(v)).sum();
            prop_assert!(
                (mass_in - mass_out).abs() <= 1e-4 * (1.0 + mass_out.abs()),
                "mass {mass_in} vs {mass_out}"
            );
        }

        /// Shape validation on ragged geometries: a grad_output of any shape
        /// other than the layer's output shape is rejected, for every
        /// stride/padding/pool-size combination.
        #[test]
        fn backward_shape_validation_on_ragged_shapes(
            h in 4_usize..9,
            w in 4_usize..9,
            stride in 1_usize..3,
            padding in 0_usize..2,
            size in 2_usize..4,
        ) {
            let conv = Conv2d::new(1, 2, 3, stride, padding).unwrap();
            let input = Tensor::zeros(&[1, h, w]);
            let out_shape = conv.output_shape(input.shape()).unwrap();
            let bad = Tensor::zeros(&[out_shape[0], out_shape[1] + 1, out_shape[2]]);
            prop_assert!(conv2d_backward(&conv, &input, &bad).is_err());
            let mut scratch = GradScratch::new();
            let mut grads = ConvGrads::default();
            let plane = SpikePlane::from_tensor(&input);
            prop_assert!(
                conv2d_backward_into(&conv, &plane, &bad, &mut scratch, &mut grads, true).is_err()
            );
            // A lowering built for a different geometry is rejected too.
            let mut wrong = CachedLowering::new();
            wrong
                .prepare(&conv, &SpikePlane::from_tensor(&Tensor::zeros(&[1, h + 2, w])))
                .unwrap();
            let wrong_spatial = {
                let taller = conv.output_shape(&[1, h + 2, w]).unwrap();
                taller[1] * taller[2] != out_shape[1] * out_shape[2]
            };
            if wrong_spatial {
                let good = Tensor::zeros(&out_shape);
                prop_assert!(conv2d_backward_cached(
                    &conv, &wrong, input.shape(), &good, &mut scratch, &mut grads, true
                )
                .is_err());
            }
            if h >= size && w >= size {
                let pool = SpikeMaxPool2d::new(size).unwrap();
                let pooled = pool.output_shape(input.shape()).unwrap();
                let bad_pool = Tensor::zeros(&[pooled[0], pooled[1], pooled[2] + 1]);
                prop_assert!(pool_backward(&pool, &input, &bad_pool).is_err());
                let mut out = Tensor::default();
                prop_assert!(
                    pool_backward_into(&pool, &plane, &bad_pool, &mut scratch, &mut out).is_err()
                );
            }
        }
    }

    #[test]
    fn backward_into_skips_input_gradient_when_not_needed() {
        let mut rng = StdRng::seed_from_u64(5);
        let conv = Conv2d::with_kaiming_init(2, 3, 3, 1, 1, &mut rng).unwrap();
        let input = Tensor::from_fn(&[2, 5, 5], |i| f32::from(i % 3 == 0));
        let grad_out = grad_tensor(&conv.output_shape(input.shape()).unwrap(), 11);
        let reference = conv2d_backward(&conv, &input, &grad_out).unwrap();
        let mut scratch = GradScratch::new();
        let mut grads = ConvGrads::default();
        conv2d_backward_into(
            &conv,
            &SpikePlane::from_tensor(&input),
            &grad_out,
            &mut scratch,
            &mut grads,
            false,
        )
        .unwrap();
        assert_bits_eq(&grads.weight, &reference.weight, "weight");
        assert_bits_eq(&grads.bias, &reference.bias, "bias");
        // The input buffer is untouched (still the default empty tensor).
        assert!(grads.input.is_empty());
    }
}
