//! # snn-train
//!
//! From-scratch training substrate for the spiking VGG9 models of the paper:
//! surrogate-gradient backpropagation through time (BPTT), quantization-aware
//! training (QAT) with a straight-through estimator, and the optimizers and
//! loss functions needed to train on the synthetic datasets of `snn-data`.
//!
//! This replaces the snnTorch + GPU training pipeline the authors used; the
//! mechanisms are the same (fast-sigmoid surrogate for the spike
//! non-linearity, membrane-potential BPTT with a detached reset term,
//! fake-quantized weights in the forward pass), only the scale is reduced so
//! the experiments run on a CPU in seconds-to-minutes.
//!
//! The crate is organised as:
//!
//! * [`surrogate`] — surrogate derivatives of the spike non-linearity,
//! * [`grad`] — layer-level backward passes (conv, linear, pooling): an
//!   allocating dense reference family plus the scratch-backed, event-aware
//!   production `_into` family the hot loop runs (including the fused
//!   [`grad::conv2d_input_grad_into`] input-gradient kernel), proven
//!   bitwise identical to the reference,
//! * [`loss`] — softmax cross-entropy over the population readout,
//! * [`optim`] — SGD with momentum and Adam,
//! * [`bptt`] — the time-unrolled forward/backward over a whole network:
//!   event-driven sweeps over [`snn_core::spike::SpikePlane`] frames, the
//!   long-lived [`bptt::BpttScratch`] (zero heap allocations per timestep
//!   once warm), and per-batch preparation of the QAT weight copies and
//!   transposed filter banks,
//! * [`trainer`] — the epoch/batch loop over a persistent worker pool
//!   (bitwise identical at every thread count), QAT hook, per-sample worker
//!   supervision with poisoned-data quarantine, graceful interruption
//!   ([`StopHandle`]) and evaluation helpers,
//! * [`checkpoint`] — crash-safe, atomically-saved [`TrainCheckpoint`]s
//!   (weights + full optimizer state + epoch/batch cursor) from which
//!   [`Trainer::resume`] continues bitwise-identically to the uninterrupted
//!   run,
//! * [`error`] — the typed [`TrainError`] surface (validation, non-finite
//!   fail-fast, fault budget, resume compatibility),
//! * [`fault`] — seeded, batching/thread-invariant chaos injection
//!   ([`TrainFaultPlan`]) and the [`SampleFault`] quarantine reporting.

pub mod bptt;
pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod grad;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod schedule;
pub mod surrogate;
pub mod trainer;

pub use bptt::{Bptt, BpttConfig, BpttScratch, NetworkGradients};
pub use checkpoint::{DataFingerprint, LayerWeights, TrainCheckpoint, TrainCursor};
pub use error::TrainError;
pub use fault::{FaultReason, SampleFault, TrainFault, TrainFaultPlan};
pub use grad::{conv2d_input_grad_into, CachedLowering, GradScratch};
pub use loss::{cross_entropy, softmax};
pub use optim::{Adam, Optimizer, OptimizerKind, OptimizerState, Sgd};
pub use schedule::{LrSchedule, ScheduleKind};
pub use surrogate::SurrogateKind;
pub use trainer::{EvalReport, StopHandle, TrainConfig, TrainReport, Trainer};
