//! Optimizers: SGD with momentum and Adam.
//!
//! The optimizers operate on flat parameter/gradient pairs keyed by a stable
//! parameter identifier (layer index + parameter role), so the trainer can
//! feed them the conv/linear weights of a network in any order.
//!
//! Both optimizers can snapshot their full update state as an
//! [`OptimizerState`] and be rebuilt from one, which is what makes training
//! checkpoints resumable with bitwise-identical trajectories: the momentum
//! buffers (SGD) and the first/second moments plus per-parameter timestep
//! (Adam — the timestep drives bias correction) are the only mutable state
//! an optimizer owns. Internally state lives in `BTreeMap`s so capture and
//! serialisation order is deterministic.

use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::tensor::Tensor;
use std::collections::BTreeMap;

/// A stochastic gradient-based optimizer.
pub trait Optimizer {
    /// Applies one update to `param` given `grad`. The `key` identifies the
    /// parameter across calls so stateful optimizers can keep per-parameter
    /// moments.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the gradient shape differs from
    /// the parameter shape.
    fn step(&mut self, key: &str, param: &mut Tensor, grad: &Tensor) -> Result<(), SnnError>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Which optimizer a training run uses. Serialisable so a checkpoint can
/// rebuild the exact update rule on resume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    Adam,
    /// SGD with classical momentum.
    Sgd {
        /// Momentum coefficient in `[0, 1)`; 0 is plain SGD.
        momentum: f32,
    },
}

/// A complete snapshot of an optimizer's mutable state.
///
/// Capturing and restoring this (plus the parameters themselves) reproduces
/// the optimizer's future updates bitwise — there is no hidden state.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerState {
    /// Snapshot of an [`Sgd`] optimizer.
    Sgd {
        /// Learning rate at capture time.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
        /// Per-parameter velocity buffers.
        velocity: BTreeMap<String, Tensor>,
    },
    /// Snapshot of an [`Adam`] optimizer.
    Adam {
        /// Learning rate at capture time.
        lr: f32,
        /// β₁ (first-moment decay).
        beta1: f32,
        /// β₂ (second-moment decay).
        beta2: f32,
        /// Numerical-stability epsilon.
        epsilon: f32,
        /// Per-parameter step counts (drive bias correction).
        steps: BTreeMap<String, u64>,
        /// Per-parameter first moments `m`.
        first_moment: BTreeMap<String, Tensor>,
        /// Per-parameter second moments `v`.
        second_moment: BTreeMap<String, Tensor>,
    },
}

impl OptimizerState {
    /// Total optimizer steps taken so far (the maximum per-parameter step
    /// count; all parameters of one network advance in lockstep).
    pub fn step_count(&self) -> u64 {
        match self {
            OptimizerState::Sgd { .. } => 0,
            OptimizerState::Adam { steps, .. } => steps.values().copied().max().unwrap_or(0),
        }
    }
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: BTreeMap<String, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: BTreeMap::new(),
        }
    }

    /// Snapshots the full mutable state (learning rate, momentum, velocity
    /// buffers).
    pub fn state(&self) -> OptimizerState {
        OptimizerState::Sgd {
            lr: self.lr,
            momentum: self.momentum,
            velocity: self.velocity.clone(),
        }
    }

    /// Rebuilds an SGD optimizer from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the snapshot is for a
    /// different optimizer kind.
    pub fn from_state(state: OptimizerState) -> Result<Self, SnnError> {
        match state {
            OptimizerState::Sgd {
                lr,
                momentum,
                velocity,
            } => Ok(Sgd {
                lr,
                momentum,
                velocity,
            }),
            OptimizerState::Adam { .. } => Err(SnnError::config(
                "optimizer_state",
                "snapshot is for Adam, not SGD",
            )),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, key: &str, param: &mut Tensor, grad: &Tensor) -> Result<(), SnnError> {
        if param.shape() != grad.shape() {
            return Err(SnnError::shape(param.shape(), grad.shape(), "Sgd::step"));
        }
        let velocity = self
            .velocity
            .entry(key.to_string())
            .or_insert_with(|| Tensor::zeros(param.shape()));
        if velocity.shape() != param.shape() {
            *velocity = Tensor::zeros(param.shape());
        }
        let momentum = self.momentum;
        let lr = self.lr;
        for ((v, p), g) in velocity
            .as_mut_slice()
            .iter_mut()
            .zip(param.as_mut_slice().iter_mut())
            .zip(grad.as_slice().iter())
        {
            *v = momentum * *v + g;
            *p -= lr * *v;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias-corrected moments.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    steps: BTreeMap<String, u64>,
    first_moment: BTreeMap<String, Tensor>,
    second_moment: BTreeMap<String, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            steps: BTreeMap::new(),
            first_moment: BTreeMap::new(),
            second_moment: BTreeMap::new(),
        }
    }

    /// Snapshots the full mutable state (hyperparameters, per-parameter step
    /// counts and both moment maps).
    pub fn state(&self) -> OptimizerState {
        OptimizerState::Adam {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            epsilon: self.epsilon,
            steps: self.steps.clone(),
            first_moment: self.first_moment.clone(),
            second_moment: self.second_moment.clone(),
        }
    }

    /// Rebuilds an Adam optimizer from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the snapshot is for a
    /// different optimizer kind.
    pub fn from_state(state: OptimizerState) -> Result<Self, SnnError> {
        match state {
            OptimizerState::Adam {
                lr,
                beta1,
                beta2,
                epsilon,
                steps,
                first_moment,
                second_moment,
            } => Ok(Adam {
                lr,
                beta1,
                beta2,
                epsilon,
                steps,
                first_moment,
                second_moment,
            }),
            OptimizerState::Sgd { .. } => Err(SnnError::config(
                "optimizer_state",
                "snapshot is for SGD, not Adam",
            )),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, key: &str, param: &mut Tensor, grad: &Tensor) -> Result<(), SnnError> {
        if param.shape() != grad.shape() {
            return Err(SnnError::shape(param.shape(), grad.shape(), "Adam::step"));
        }
        let t = self.steps.entry(key.to_string()).or_insert(0);
        *t += 1;
        let t = *t;
        let m = self
            .first_moment
            .entry(key.to_string())
            .or_insert_with(|| Tensor::zeros(param.shape()));
        if m.shape() != param.shape() {
            *m = Tensor::zeros(param.shape());
        }
        let v = self
            .second_moment
            .entry(key.to_string())
            .or_insert_with(|| Tensor::zeros(param.shape()));
        if v.shape() != param.shape() {
            *v = Tensor::zeros(param.shape());
        }
        // Re-borrow both maps simultaneously; the entries exist now.
        let m = self
            .first_moment
            .get_mut(key)
            .expect("entry inserted above");
        let v = self
            .second_moment
            .get_mut(key)
            .expect("entry inserted above");
        let (b1, b2) = (self.beta1, self.beta2);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        for (((mi, vi), p), g) in m
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice().iter_mut())
            .zip(param.as_mut_slice().iter_mut())
            .zip(grad.as_slice().iter())
        {
            *mi = b1 * *mi + (1.0 - b1) * g;
            *vi = b2 * *vi + (1.0 - b2) * g * g;
            let m_hat = *mi / bias1;
            let v_hat = *vi / bias2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_minimisation(optim: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimise f(x) = (x - 3)^2 starting from x = 0.
        let mut param = Tensor::zeros(&[1]);
        for _ in 0..steps {
            let x = param.as_slice()[0];
            let grad = Tensor::from_vec(vec![2.0 * (x - 3.0)], &[1]).unwrap();
            optim.step("x", &mut param, &grad).unwrap();
        }
        param.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let x = quadratic_minimisation(&mut sgd, 100);
        assert!((x - 3.0).abs() < 1e-3, "converged to {x}");
    }

    #[test]
    fn sgd_with_momentum_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.05, 0.9);
        let x = quadratic_minimisation(&mut sgd, 200);
        assert!((x - 3.0).abs() < 1e-2, "converged to {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.2);
        let x = quadratic_minimisation(&mut adam, 300);
        assert!((x - 3.0).abs() < 1e-2, "converged to {x}");
    }

    #[test]
    fn step_rejects_shape_mismatch() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let mut adam = Adam::new(0.1);
        let mut param = Tensor::zeros(&[2]);
        let grad = Tensor::zeros(&[3]);
        assert!(sgd.step("p", &mut param, &grad).is_err());
        assert!(adam.step("p", &mut param, &grad).is_err());
    }

    #[test]
    fn learning_rate_can_be_changed() {
        let mut sgd = Sgd::new(0.1, 0.0);
        assert_eq!(sgd.learning_rate(), 0.1);
        sgd.set_learning_rate(0.01);
        assert_eq!(sgd.learning_rate(), 0.01);
        let mut adam = Adam::new(0.5);
        adam.set_learning_rate(0.05);
        assert_eq!(adam.learning_rate(), 0.05);
    }

    #[test]
    fn separate_keys_keep_separate_state() {
        let mut adam = Adam::new(0.1);
        let mut a = Tensor::zeros(&[1]);
        let mut b = Tensor::zeros(&[1]);
        let ga = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let gb = Tensor::from_vec(vec![-1.0], &[1]).unwrap();
        for _ in 0..10 {
            adam.step("a", &mut a, &ga).unwrap();
            adam.step("b", &mut b, &gb).unwrap();
        }
        assert!(a.as_slice()[0] < 0.0);
        assert!(b.as_slice()[0] > 0.0);
    }

    #[test]
    fn optimizer_trait_is_object_safe() {
        let mut boxed: Box<dyn Optimizer> = Box::new(Sgd::new(0.1, 0.0));
        let mut param = Tensor::zeros(&[1]);
        let grad = Tensor::ones(&[1]);
        boxed.step("p", &mut param, &grad).unwrap();
        assert!(param.as_slice()[0] < 0.0);
    }

    /// Interrupting a run, snapshotting, restoring into a fresh optimizer
    /// and continuing must produce bitwise-identical parameters to the
    /// uninterrupted run — for both optimizers.
    #[test]
    fn state_round_trip_resumes_bitwise() {
        let grad_at = |x: f32| Tensor::from_vec(vec![2.0 * (x - 3.0)], &[1]).unwrap();

        // Uninterrupted references.
        let mut adam_ref = Adam::new(0.2);
        let mut sgd_ref = Sgd::new(0.05, 0.9);
        let mut pa_ref = Tensor::zeros(&[1]);
        let mut ps_ref = Tensor::zeros(&[1]);
        for _ in 0..50 {
            let g = grad_at(pa_ref.as_slice()[0]);
            adam_ref.step("x", &mut pa_ref, &g).unwrap();
            let g = grad_at(ps_ref.as_slice()[0]);
            sgd_ref.step("x", &mut ps_ref, &g).unwrap();
        }

        // Interrupted at step 20, resumed from snapshots.
        let mut adam = Adam::new(0.2);
        let mut sgd = Sgd::new(0.05, 0.9);
        let mut pa = Tensor::zeros(&[1]);
        let mut ps = Tensor::zeros(&[1]);
        for _ in 0..20 {
            let g = grad_at(pa.as_slice()[0]);
            adam.step("x", &mut pa, &g).unwrap();
            let g = grad_at(ps.as_slice()[0]);
            sgd.step("x", &mut ps, &g).unwrap();
        }
        let mut adam = Adam::from_state(adam.state()).unwrap();
        let mut sgd = Sgd::from_state(sgd.state()).unwrap();
        for _ in 20..50 {
            let g = grad_at(pa.as_slice()[0]);
            adam.step("x", &mut pa, &g).unwrap();
            let g = grad_at(ps.as_slice()[0]);
            sgd.step("x", &mut ps, &g).unwrap();
        }

        assert_eq!(
            pa.as_slice()[0].to_bits(),
            pa_ref.as_slice()[0].to_bits(),
            "Adam resume diverged"
        );
        assert_eq!(
            ps.as_slice()[0].to_bits(),
            ps_ref.as_slice()[0].to_bits(),
            "SGD resume diverged"
        );
    }

    #[test]
    fn state_kind_mismatch_is_rejected() {
        let adam = Adam::new(0.1);
        let sgd = Sgd::new(0.1, 0.9);
        assert!(Sgd::from_state(adam.state()).is_err());
        assert!(Adam::from_state(sgd.state()).is_err());
        assert_eq!(adam.state().step_count(), 0);
    }
}
