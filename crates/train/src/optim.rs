//! Optimizers: SGD with momentum and Adam.
//!
//! The optimizers operate on flat parameter/gradient pairs keyed by a stable
//! parameter identifier (layer index + parameter role), so the trainer can
//! feed them the conv/linear weights of a network in any order.

use snn_core::error::SnnError;
use snn_core::tensor::Tensor;
use std::collections::HashMap;

/// A stochastic gradient-based optimizer.
pub trait Optimizer {
    /// Applies one update to `param` given `grad`. The `key` identifies the
    /// parameter across calls so stateful optimizers can keep per-parameter
    /// moments.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the gradient shape differs from
    /// the parameter shape.
    fn step(&mut self, key: &str, param: &mut Tensor, grad: &Tensor) -> Result<(), SnnError>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, key: &str, param: &mut Tensor, grad: &Tensor) -> Result<(), SnnError> {
        if param.shape() != grad.shape() {
            return Err(SnnError::shape(param.shape(), grad.shape(), "Sgd::step"));
        }
        let velocity = self
            .velocity
            .entry(key.to_string())
            .or_insert_with(|| Tensor::zeros(param.shape()));
        if velocity.shape() != param.shape() {
            *velocity = Tensor::zeros(param.shape());
        }
        let momentum = self.momentum;
        let lr = self.lr;
        for ((v, p), g) in velocity
            .as_mut_slice()
            .iter_mut()
            .zip(param.as_mut_slice().iter_mut())
            .zip(grad.as_slice().iter())
        {
            *v = momentum * *v + g;
            *p -= lr * *v;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias-corrected moments.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    steps: HashMap<String, u64>,
    first_moment: HashMap<String, Tensor>,
    second_moment: HashMap<String, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            steps: HashMap::new(),
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, key: &str, param: &mut Tensor, grad: &Tensor) -> Result<(), SnnError> {
        if param.shape() != grad.shape() {
            return Err(SnnError::shape(param.shape(), grad.shape(), "Adam::step"));
        }
        let t = self.steps.entry(key.to_string()).or_insert(0);
        *t += 1;
        let t = *t;
        let m = self
            .first_moment
            .entry(key.to_string())
            .or_insert_with(|| Tensor::zeros(param.shape()));
        let v = self
            .second_moment
            .entry(key.to_string())
            .or_insert_with(|| Tensor::zeros(param.shape()));
        if m.shape() != param.shape() {
            *m = Tensor::zeros(param.shape());
        }
        if v.shape() != param.shape() {
            *v = Tensor::zeros(param.shape());
        }
        let (b1, b2) = (self.beta1, self.beta2);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        for (((mi, vi), p), g) in m
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice().iter_mut())
            .zip(param.as_mut_slice().iter_mut())
            .zip(grad.as_slice().iter())
        {
            *mi = b1 * *mi + (1.0 - b1) * g;
            *vi = b2 * *vi + (1.0 - b2) * g * g;
            let m_hat = *mi / bias1;
            let v_hat = *vi / bias2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_minimisation(optim: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimise f(x) = (x - 3)^2 starting from x = 0.
        let mut param = Tensor::zeros(&[1]);
        for _ in 0..steps {
            let x = param.as_slice()[0];
            let grad = Tensor::from_vec(vec![2.0 * (x - 3.0)], &[1]).unwrap();
            optim.step("x", &mut param, &grad).unwrap();
        }
        param.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let x = quadratic_minimisation(&mut sgd, 100);
        assert!((x - 3.0).abs() < 1e-3, "converged to {x}");
    }

    #[test]
    fn sgd_with_momentum_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.05, 0.9);
        let x = quadratic_minimisation(&mut sgd, 200);
        assert!((x - 3.0).abs() < 1e-2, "converged to {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.2);
        let x = quadratic_minimisation(&mut adam, 300);
        assert!((x - 3.0).abs() < 1e-2, "converged to {x}");
    }

    #[test]
    fn step_rejects_shape_mismatch() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let mut adam = Adam::new(0.1);
        let mut param = Tensor::zeros(&[2]);
        let grad = Tensor::zeros(&[3]);
        assert!(sgd.step("p", &mut param, &grad).is_err());
        assert!(adam.step("p", &mut param, &grad).is_err());
    }

    #[test]
    fn learning_rate_can_be_changed() {
        let mut sgd = Sgd::new(0.1, 0.0);
        assert_eq!(sgd.learning_rate(), 0.1);
        sgd.set_learning_rate(0.01);
        assert_eq!(sgd.learning_rate(), 0.01);
        let mut adam = Adam::new(0.5);
        adam.set_learning_rate(0.05);
        assert_eq!(adam.learning_rate(), 0.05);
    }

    #[test]
    fn separate_keys_keep_separate_state() {
        let mut adam = Adam::new(0.1);
        let mut a = Tensor::zeros(&[1]);
        let mut b = Tensor::zeros(&[1]);
        let ga = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let gb = Tensor::from_vec(vec![-1.0], &[1]).unwrap();
        for _ in 0..10 {
            adam.step("a", &mut a, &ga).unwrap();
            adam.step("b", &mut b, &gb).unwrap();
        }
        assert!(a.as_slice()[0] < 0.0);
        assert!(b.as_slice()[0] > 0.0);
    }

    #[test]
    fn optimizer_trait_is_object_safe() {
        let mut boxed: Box<dyn Optimizer> = Box::new(Sgd::new(0.1, 0.0));
        let mut param = Tensor::zeros(&[1]);
        let grad = Tensor::ones(&[1]);
        boxed.step("p", &mut param, &grad).unwrap();
        assert!(param.as_slice()[0] < 0.0);
    }
}
