//! Crash-safe training checkpoints.
//!
//! A [`TrainCheckpoint`] is a complete snapshot of a training run at a batch
//! boundary: network weights, full optimizer state ([`OptimizerState`] —
//! SGD momentum buffers, Adam moments *and* the bias-correction timesteps),
//! the epoch/batch cursor with its partial epoch accumulators, the
//! per-epoch progress so far and the run's [`TrainConfig`]. Together with
//! the dataset (identified by a [`DataFingerprint`]) this determines every
//! remaining update bitwise, which is what makes
//! [`Trainer::resume`](crate::trainer::Trainer::resume) produce weights
//! identical to the uninterrupted run.
//!
//! # On-disk format
//!
//! Checkpoints ride the same crash-safe envelope as inference checkpoints
//! (`snn_core::io`): the payload is written to a temp file, fsynced, renamed
//! over the target, and sealed with the `SNCKPT01` CRC-64/XZ trailer, so a
//! torn or bit-flipped file is rejected at load instead of resuming from
//! garbage. The payload itself is a binary section family:
//!
//! ```text
//! "SNTRAIN1" | u32 version | section*      section = tag[4] | u64 len | bytes
//! ```
//!
//! Small structured state (`CFG!`, `DATA`) is JSON for debuggability; bulk
//! tensors (`WGTS`, `OPTS`) are raw little-endian `f32` so saving a
//! multi-megabyte state costs milliseconds, not a JSON tree. All floats
//! round-trip bitwise in both encodings (the vendored JSON uses
//! shortest-round-trip formatting). Unknown sections are skipped, so future
//! sections can be added without breaking old readers.

use crate::error::TrainError;
use crate::fault::{FaultReason, SampleFault};
use crate::optim::OptimizerState;
use crate::trainer::{TrainConfig, TrainReport};
use serde::{Deserialize, Serialize};
use snn_core::error::SnnError;
use snn_core::io::{load_payload, save_payload};
use snn_core::network::{Layer, SnnNetwork};
use snn_core::tensor::Tensor;
use snn_data::{Dataset, Split};
use std::collections::BTreeMap;
use std::path::Path;

/// Magic prefix of the checkpoint payload (inside the CRC envelope).
const MAGIC: [u8; 8] = *b"SNTRAIN1";
/// Payload format version.
const VERSION: u32 = 1;

const TAG_CONFIG: [u8; 4] = *b"CFG!";
const TAG_DATA: [u8; 4] = *b"DATA";
const TAG_CURSOR: [u8; 4] = *b"CURS";
const TAG_REPORT: [u8; 4] = *b"RPRT";
const TAG_WEIGHTS: [u8; 4] = *b"WGTS";
const TAG_OPTIMIZER: [u8; 4] = *b"OPTS";

/// Identity of the dataset a checkpoint was trained on. Resume refuses a
/// dataset whose fingerprint differs — continuing on different data would
/// silently break the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataFingerprint {
    /// Dataset name.
    pub name: String,
    /// Number of classes.
    pub num_classes: usize,
    /// Input image shape `[C, H, W]`.
    pub image_shape: Vec<usize>,
    /// Number of training samples.
    pub train_len: usize,
}

impl DataFingerprint {
    /// Fingerprints a dataset.
    pub fn of(data: &dyn Dataset) -> Self {
        DataFingerprint {
            name: data.name().to_string(),
            num_classes: data.num_classes(),
            image_shape: data.image_shape().to_vec(),
            train_len: data.len(Split::Train),
        }
    }
}

/// Where in the run a checkpoint was taken: always a batch boundary, with
/// the optimizer step already applied for every batch before `next_index`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrainCursor {
    /// Epoch in progress (0-based).
    pub epoch: usize,
    /// Index of the first sample of the next batch within the epoch.
    pub next_index: usize,
    /// Total optimizer steps (batches) applied so far across all epochs.
    pub steps: u64,
    /// Partial epoch accumulator: summed sample losses.
    pub epoch_loss: f64,
    /// Partial epoch accumulator: correct predictions.
    pub correct: usize,
    /// Partial epoch accumulator: samples trained (quarantined excluded).
    pub seen: usize,
    /// Partial epoch accumulator: total spikes.
    pub spikes: u64,
}

/// The weights of one trainable layer, by layer index in the network.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// Index of the layer in `network.layers()`.
    pub layer_index: usize,
    /// The weight tensor.
    pub weight: Tensor,
    /// The bias tensor.
    pub bias: Tensor,
}

/// A complete, resumable snapshot of a training run at a batch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// The run's configuration (resume re-validates and reuses it).
    pub config: TrainConfig,
    /// Identity of the training dataset.
    pub data: DataFingerprint,
    /// Position in the run.
    pub cursor: TrainCursor,
    /// Per-epoch progress and quarantined-sample faults so far.
    pub report: TrainReport,
    /// Weights of every trainable layer.
    pub weights: Vec<LayerWeights>,
    /// Full optimizer state.
    pub optimizer: OptimizerState,
}

impl TrainCheckpoint {
    /// Captures the weights of every trainable layer of `network`.
    pub fn capture_weights(network: &SnnNetwork) -> Vec<LayerWeights> {
        network
            .layers()
            .iter()
            .enumerate()
            .filter_map(|(layer_index, layer)| match layer {
                Layer::Conv { conv, .. } => Some(LayerWeights {
                    layer_index,
                    weight: conv.weight().clone(),
                    bias: conv.bias().clone(),
                }),
                Layer::Linear { linear, .. } => Some(LayerWeights {
                    layer_index,
                    weight: linear.weight().clone(),
                    bias: linear.bias().clone(),
                }),
                Layer::Pool { .. } => None,
            })
            .collect()
    }

    /// Writes the checkpoint weights back into `network`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::IncompatibleResume`] if a layer index or tensor
    /// shape does not match the network.
    pub fn restore_weights(&self, network: &mut SnnNetwork) -> Result<(), TrainError> {
        let layer_count = network.layers().len();
        for lw in &self.weights {
            let layer = network
                .layers_mut()
                .get_mut(lw.layer_index)
                .ok_or_else(|| TrainError::IncompatibleResume {
                    reason: format!(
                        "checkpoint has weights for layer {} but the network has only \
                         {layer_count} layers",
                        lw.layer_index
                    ),
                })?;
            match layer {
                Layer::Conv { conv, .. } => {
                    copy_tensor(conv.weight_mut(), &lw.weight, lw.layer_index)?;
                    copy_tensor(conv.bias_mut(), &lw.bias, lw.layer_index)?;
                }
                Layer::Linear { linear, .. } => {
                    copy_tensor(linear.weight_mut(), &lw.weight, lw.layer_index)?;
                    copy_tensor(linear.bias_mut(), &lw.bias, lw.layer_index)?;
                }
                Layer::Pool { name, .. } => {
                    return Err(TrainError::IncompatibleResume {
                        reason: format!(
                            "checkpoint has weights for layer {} ({name}) which is a pool layer",
                            lw.layer_index
                        ),
                    })
                }
            }
        }
        Ok(())
    }

    /// Checks that this checkpoint can resume against `network` and `data`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::IncompatibleResume`] naming the first mismatch.
    pub fn validate_against(
        &self,
        network: &SnnNetwork,
        data: &dyn Dataset,
    ) -> Result<(), TrainError> {
        let fingerprint = DataFingerprint::of(data);
        if fingerprint != self.data {
            return Err(TrainError::IncompatibleResume {
                reason: format!(
                    "dataset fingerprint mismatch: checkpoint was trained on {:?}, got {:?}",
                    self.data, fingerprint
                ),
            });
        }
        let trainable = network
            .layers()
            .iter()
            .filter(|l| l.is_weight_layer())
            .count();
        if trainable != self.weights.len() {
            return Err(TrainError::IncompatibleResume {
                reason: format!(
                    "network has {trainable} trainable layers, checkpoint has {}",
                    self.weights.len()
                ),
            });
        }
        if self.cursor.epoch >= self.config.epochs && self.cursor.next_index != 0 {
            return Err(TrainError::IncompatibleResume {
                reason: format!(
                    "cursor epoch {} is past the configured {} epochs",
                    self.cursor.epoch, self.config.epochs
                ),
            });
        }
        Ok(())
    }

    /// Saves the checkpoint atomically (temp file + fsync + rename) with the
    /// CRC-64 integrity trailer.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] on I/O or serialisation failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnnError> {
        save_payload(path, &self.to_payload()?)
    }

    /// Loads and verifies a checkpoint (trailer CRC first, then the section
    /// structure).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the file is missing, torn,
    /// corrupted or structurally invalid.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnnError> {
        Self::from_payload(&load_payload(path)?)
    }

    /// Serialises the checkpoint to its binary section payload.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the config contains
    /// non-serialisable values (NaN rates).
    pub fn to_payload(&self) -> Result<Vec<u8>, SnnError> {
        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.u32(VERSION);

        let config_json = serde_json::to_string(&self.config)
            .map_err(|e| SnnError::config("train_checkpoint", format!("config: {e}")))?;
        w.section(TAG_CONFIG, config_json.as_bytes());
        let data_json = serde_json::to_string(&self.data)
            .map_err(|e| SnnError::config("train_checkpoint", format!("data: {e}")))?;
        w.section(TAG_DATA, data_json.as_bytes());

        let mut c = Writer::new();
        c.u64(self.cursor.epoch as u64);
        c.u64(self.cursor.next_index as u64);
        c.u64(self.cursor.steps);
        c.f64(self.cursor.epoch_loss);
        c.u64(self.cursor.correct as u64);
        c.u64(self.cursor.seen as u64);
        c.u64(self.cursor.spikes);
        w.section(TAG_CURSOR, &c.buf);

        let mut r = Writer::new();
        r.u64(self.report.epoch_losses.len() as u64);
        for &loss in &self.report.epoch_losses {
            r.f32(loss);
        }
        r.u64(self.report.epoch_accuracies.len() as u64);
        for &acc in &self.report.epoch_accuracies {
            r.f64(acc);
        }
        r.u64(self.report.epoch_mean_spikes.len() as u64);
        for &spk in &self.report.epoch_mean_spikes {
            r.f64(spk);
        }
        r.u64(self.report.faults.len() as u64);
        for fault in &self.report.faults {
            r.u64(fault.epoch as u64);
            r.u64(fault.index as u64);
            match &fault.reason {
                FaultReason::Panicked { message } => {
                    r.u8(0);
                    r.str(message);
                }
                FaultReason::NonFinite { what } => {
                    r.u8(1);
                    r.str(what);
                }
                FaultReason::InvalidData { detail } => {
                    r.u8(2);
                    r.str(detail);
                }
            }
        }
        w.section(TAG_REPORT, &r.buf);

        let mut t = Writer::new();
        t.u64(self.weights.len() as u64);
        for lw in &self.weights {
            t.u64(lw.layer_index as u64);
            t.tensor(&lw.weight);
            t.tensor(&lw.bias);
        }
        w.section(TAG_WEIGHTS, &t.buf);

        let mut o = Writer::new();
        match &self.optimizer {
            OptimizerState::Sgd {
                lr,
                momentum,
                velocity,
            } => {
                o.u8(0);
                o.f32(*lr);
                o.f32(*momentum);
                o.tensor_map(velocity);
            }
            OptimizerState::Adam {
                lr,
                beta1,
                beta2,
                epsilon,
                steps,
                first_moment,
                second_moment,
            } => {
                o.u8(1);
                o.f32(*lr);
                o.f32(*beta1);
                o.f32(*beta2);
                o.f32(*epsilon);
                o.u64(steps.len() as u64);
                for (key, &count) in steps {
                    o.str(key);
                    o.u64(count);
                }
                o.tensor_map(first_moment);
                o.tensor_map(second_moment);
            }
        }
        w.section(TAG_OPTIMIZER, &o.buf);

        Ok(w.buf)
    }

    /// Parses a checkpoint from its binary section payload.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] on any structural violation
    /// (wrong magic/version, missing section, truncated field).
    pub fn from_payload(payload: &[u8]) -> Result<Self, SnnError> {
        let mut r = Reader::new(payload);
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(parse_err("bad payload magic (not a training checkpoint)"));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(parse_err(format!(
                "unsupported checkpoint version {version} (expected {VERSION})"
            )));
        }

        let mut config: Option<TrainConfig> = None;
        let mut data: Option<DataFingerprint> = None;
        let mut cursor: Option<TrainCursor> = None;
        let mut report: Option<TrainReport> = None;
        let mut weights: Option<Vec<LayerWeights>> = None;
        let mut optimizer: Option<OptimizerState> = None;

        while !r.is_empty() {
            let tag: [u8; 4] = r.take(4)?.try_into().expect("4-byte slice");
            let len = r.len_prefix()?;
            let body = r.take(len)?;
            match tag {
                TAG_CONFIG => {
                    let json = std::str::from_utf8(body)
                        .map_err(|_| parse_err("config section is not UTF-8"))?;
                    config =
                        Some(serde_json::from_str(json).map_err(|e| {
                            parse_err(format!("config section does not parse: {e}"))
                        })?);
                }
                TAG_DATA => {
                    let json = std::str::from_utf8(body)
                        .map_err(|_| parse_err("data section is not UTF-8"))?;
                    data = Some(
                        serde_json::from_str(json)
                            .map_err(|e| parse_err(format!("data section does not parse: {e}")))?,
                    );
                }
                TAG_CURSOR => {
                    let mut c = Reader::new(body);
                    cursor = Some(TrainCursor {
                        epoch: c.u64()? as usize,
                        next_index: c.u64()? as usize,
                        steps: c.u64()?,
                        epoch_loss: c.f64()?,
                        correct: c.u64()? as usize,
                        seen: c.u64()? as usize,
                        spikes: c.u64()?,
                    });
                }
                TAG_REPORT => {
                    let mut p = Reader::new(body);
                    let mut rep = TrainReport::default();
                    let n = p.len_prefix()?;
                    rep.epoch_losses = (0..n).map(|_| p.f32()).collect::<Result<_, _>>()?;
                    let n = p.len_prefix()?;
                    rep.epoch_accuracies = (0..n).map(|_| p.f64()).collect::<Result<_, _>>()?;
                    let n = p.len_prefix()?;
                    rep.epoch_mean_spikes = (0..n).map(|_| p.f64()).collect::<Result<_, _>>()?;
                    let n = p.len_prefix()?;
                    rep.faults = (0..n)
                        .map(|_| {
                            let epoch = p.u64()? as usize;
                            let index = p.u64()? as usize;
                            let reason = match p.u8()? {
                                0 => FaultReason::Panicked { message: p.str()? },
                                1 => FaultReason::NonFinite { what: p.str()? },
                                2 => FaultReason::InvalidData { detail: p.str()? },
                                other => {
                                    return Err(parse_err(format!(
                                        "unknown fault reason tag {other}"
                                    )))
                                }
                            };
                            Ok(SampleFault {
                                epoch,
                                index,
                                reason,
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    report = Some(rep);
                }
                TAG_WEIGHTS => {
                    let mut p = Reader::new(body);
                    let n = p.len_prefix()?;
                    weights = Some(
                        (0..n)
                            .map(|_| {
                                Ok(LayerWeights {
                                    layer_index: p.u64()? as usize,
                                    weight: p.tensor()?,
                                    bias: p.tensor()?,
                                })
                            })
                            .collect::<Result<_, SnnError>>()?,
                    );
                }
                TAG_OPTIMIZER => {
                    let mut p = Reader::new(body);
                    optimizer = Some(match p.u8()? {
                        0 => OptimizerState::Sgd {
                            lr: p.f32()?,
                            momentum: p.f32()?,
                            velocity: p.tensor_map()?,
                        },
                        1 => {
                            let lr = p.f32()?;
                            let beta1 = p.f32()?;
                            let beta2 = p.f32()?;
                            let epsilon = p.f32()?;
                            let n = p.len_prefix()?;
                            let mut steps = BTreeMap::new();
                            for _ in 0..n {
                                let key = p.str()?;
                                let count = p.u64()?;
                                steps.insert(key, count);
                            }
                            OptimizerState::Adam {
                                lr,
                                beta1,
                                beta2,
                                epsilon,
                                steps,
                                first_moment: p.tensor_map()?,
                                second_moment: p.tensor_map()?,
                            }
                        }
                        other => return Err(parse_err(format!("unknown optimizer tag {other}"))),
                    });
                }
                // Unknown sections are skipped for forward compatibility.
                _ => {}
            }
        }

        Ok(TrainCheckpoint {
            config: config.ok_or_else(|| parse_err("missing config section"))?,
            data: data.ok_or_else(|| parse_err("missing data section"))?,
            cursor: cursor.ok_or_else(|| parse_err("missing cursor section"))?,
            report: report.ok_or_else(|| parse_err("missing report section"))?,
            weights: weights.ok_or_else(|| parse_err("missing weights section"))?,
            optimizer: optimizer.ok_or_else(|| parse_err("missing optimizer section"))?,
        })
    }
}

/// Copies a checkpointed tensor over a network parameter after a shape
/// check.
fn copy_tensor(dst: &mut Tensor, src: &Tensor, layer_index: usize) -> Result<(), TrainError> {
    if dst.shape() != src.shape() {
        return Err(TrainError::IncompatibleResume {
            reason: format!(
                "layer {layer_index} tensor shape {:?} does not match checkpoint shape {:?}",
                dst.shape(),
                src.shape()
            ),
        });
    }
    dst.as_mut_slice().copy_from_slice(src.as_slice());
    Ok(())
}

fn parse_err(message: impl Into<String>) -> SnnError {
    SnnError::config("train_checkpoint", message)
}

/// Little-endian binary writer over a growable buffer.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn tensor(&mut self, t: &Tensor) {
        self.u32(t.shape().len() as u32);
        for &dim in t.shape() {
            self.u64(dim as u64);
        }
        // Bulk-copy the f32 data: one reserve, then appends in 4-byte
        // chunks — this path carries hundreds of KB of weights per save.
        let data = t.as_slice();
        self.buf.reserve(data.len() * 4);
        for &v in data {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn tensor_map(&mut self, map: &BTreeMap<String, Tensor>) {
        self.u64(map.len() as u64);
        for (key, tensor) in map {
            self.str(key);
            self.tensor(tensor);
        }
    }

    fn section(&mut self, tag: [u8; 4], body: &[u8]) {
        self.bytes(&tag);
        self.u64(body.len() as u64);
        self.bytes(body);
    }
}

/// Bounds-checked little-endian reader.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnnError> {
        if n > self.remaining() {
            return Err(parse_err(format!(
                "truncated checkpoint: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnnError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnnError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnnError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, SnnError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, SnnError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A `u64` length prefix, validated against the bytes actually left so
    /// a corrupted length cannot trigger a huge allocation.
    fn len_prefix(&mut self) -> Result<usize, SnnError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(parse_err(format!(
                "corrupt length prefix {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(len as usize)
    }

    fn str(&mut self) -> Result<String, SnnError> {
        let len = self.len_prefix()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| parse_err("string field is not UTF-8"))
    }

    fn tensor(&mut self) -> Result<Tensor, SnnError> {
        let ndim = self.u32()? as usize;
        if ndim > 8 {
            return Err(parse_err(format!("implausible tensor rank {ndim}")));
        }
        let mut shape = Vec::with_capacity(ndim);
        let mut numel = 1usize;
        for _ in 0..ndim {
            let dim = self.u64()? as usize;
            numel = numel.saturating_mul(dim);
            shape.push(dim);
        }
        if numel.saturating_mul(4) > self.remaining() {
            return Err(parse_err(format!(
                "corrupt tensor: {numel} elements exceed {} remaining bytes",
                self.remaining()
            )));
        }
        // Bulk-decode the f32 data from one bounds-checked take.
        let bytes = self.take(numel * 4)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        Tensor::from_vec(data, &shape)
    }

    fn tensor_map(&mut self) -> Result<BTreeMap<String, Tensor>, SnnError> {
        let n = self.len_prefix()?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let key = self.str()?;
            let tensor = self.tensor()?;
            map.insert(key, tensor);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::optim::Optimizer;

    fn sample_checkpoint() -> TrainCheckpoint {
        let mut adam = Adam::new(2e-3);
        let mut param = Tensor::zeros(&[2, 2]);
        let grad = Tensor::ones(&[2, 2]);
        adam.step("layer0.weight", &mut param, &grad).unwrap();
        adam.step("layer0.weight", &mut param, &grad).unwrap();
        TrainCheckpoint {
            config: TrainConfig::quick(),
            data: DataFingerprint {
                name: "synthetic".into(),
                num_classes: 10,
                image_shape: vec![3, 16, 16],
                train_len: 20,
            },
            cursor: TrainCursor {
                epoch: 1,
                next_index: 4,
                steps: 7,
                epoch_loss: 9.25,
                correct: 3,
                seen: 4,
                spikes: 1234,
            },
            report: TrainReport {
                epoch_losses: vec![2.5, 2.25],
                epoch_accuracies: vec![0.125, 0.25],
                epoch_mean_spikes: vec![800.0, 750.5],
                faults: vec![SampleFault {
                    epoch: 0,
                    index: 3,
                    reason: FaultReason::Panicked {
                        message: "injected".into(),
                    },
                }],
                ..TrainReport::default()
            },
            weights: vec![LayerWeights {
                layer_index: 0,
                weight: param,
                bias: Tensor::from_vec(vec![0.5, -0.25], &[2]).unwrap(),
            }],
            optimizer: adam.state(),
        }
    }

    #[test]
    fn payload_round_trips_bitwise() {
        let checkpoint = sample_checkpoint();
        let payload = checkpoint.to_payload().unwrap();
        let restored = TrainCheckpoint::from_payload(&payload).unwrap();
        assert_eq!(restored, checkpoint);
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("snn_train_ckpt_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.snntrain");
        let checkpoint = sample_checkpoint();
        checkpoint.save(&path).unwrap();
        let restored = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(restored, checkpoint);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let payload = sample_checkpoint().to_payload().unwrap();
        for cut in [1, payload.len() / 2, payload.len() - 1] {
            assert!(
                TrainCheckpoint::from_payload(&payload[..cut]).is_err(),
                "payload truncated to {cut} bytes should not parse"
            );
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut payload = sample_checkpoint().to_payload().unwrap();
        payload[0] ^= 0xFF;
        assert!(TrainCheckpoint::from_payload(&payload).is_err());
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let checkpoint = sample_checkpoint();
        let mut payload = checkpoint.to_payload().unwrap();
        // Append an unknown section: tag + len + body.
        payload.extend_from_slice(b"XTRA");
        payload.extend_from_slice(&4u64.to_le_bytes());
        payload.extend_from_slice(&[1, 2, 3, 4]);
        let restored = TrainCheckpoint::from_payload(&payload).unwrap();
        assert_eq!(restored, checkpoint);
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_without_allocation() {
        let checkpoint = sample_checkpoint();
        let mut payload = checkpoint.to_payload().unwrap();
        // Corrupt the first section's length prefix to a huge value.
        let len_at = MAGIC.len() + 4 + 4;
        payload[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(TrainCheckpoint::from_payload(&payload).is_err());
    }
}
