//! Surrogate-gradient backpropagation through time over a whole network.
//!
//! The forward pass unrolls the network over the encoder's timesteps exactly
//! like [`snn_core::network::SnnNetwork::run`] — event-driven: activations
//! travel as [`SpikePlane`] frames, the conv/linear layers dispatch between
//! the spike-gather and the blocked dense im2col paths, and the direct-coded
//! input layer's currents are computed once per image and replayed across
//! timesteps. It additionally caches, for every weight layer and timestep,
//! the layer input, the membrane potential at thresholding time and the
//! emitted spikes. The backward pass then walks the layers in reverse, and
//! within each LIF layer walks time in reverse using the standard
//! detached-reset BPTT recursion:
//!
//! ```text
//! ∂L/∂u[t] = ∂L/∂s[t] · σ'(u[t]) + β · ∂L/∂u[t+1]
//! ```
//!
//! where `σ'` is the surrogate derivative ([`crate::surrogate`]). Weight
//! gradients are accumulated over timesteps; the gradient with respect to the
//! layer input becomes the spike gradient of the preceding layer.
//!
//! The production backward is **scratch-backed and event-aware**: layer
//! inputs are cached as [`SpikePlane`]s, so the conv weight-gradient lowering
//! is rebuilt by gather from the stored active-index lists when the frame is
//! sparse (dispatching by the same crossover the forward uses), the pool
//! backward takes each window's argmax from the event list, a replayed
//! direct-coded input is lowered once per sample under the
//! [`BpttConfig::cache_lowerings`] budget, the first layer's never-consumed
//! input gradient is skipped, and every intermediate lives in a long-lived
//! [`BpttScratch`] — after warmup the backward's time loop performs zero
//! heap allocations.
//!
//! Losses, logits and gradients of the event-driven sweep are **bitwise
//! identical** to the dense sweep, which is retained as
//! [`Bptt::sample_gradients_dense`] and enforced by the
//! `event_driven_sweep_bitwise_equals_dense_reference` test plus the
//! proptests in this module and `crate::grad`.
//!
//! Quantization-aware training: when a non-`Fp32` precision is configured,
//! the forward (and the input-gradient part of the backward) use
//! fake-quantized copies of the weights while the gradients are applied to
//! the full-precision master weights — the straight-through estimator. The
//! quantized copies can be built once per batch via [`Bptt::prepare`] and
//! shared across samples/workers instead of being re-cloned per sample.

use crate::grad::{
    conv2d_backward, conv2d_backward_cached, conv2d_backward_into, linear_backward,
    linear_backward_into, pool_backward, pool_backward_into, CachedLowering, ConvGrads,
    GradScratch, LinearGrads,
};
use crate::loss::cross_entropy;
use crate::surrogate::SurrogateKind;
use snn_core::encoding::{CodingScheme, Encoder};
use snn_core::error::SnnError;
use snn_core::layers::ConvScratch;
use snn_core::network::{Layer, SnnNetwork};
use snn_core::neuron::LifPopulation;
use snn_core::quant::Precision;
use snn_core::spike::SpikePlane;
use snn_core::tensor::Tensor;

/// Per-layer weight/bias gradients for a whole network, index-aligned with
/// [`SnnNetwork::layers`]. Pooling layers have no entry.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkGradients {
    per_layer: Vec<Option<LayerGrads>>,
}

/// Weight and bias gradients of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrads {
    /// Gradient of the weight tensor.
    pub weight: Tensor,
    /// Gradient of the bias tensor.
    pub bias: Tensor,
}

impl NetworkGradients {
    /// Creates zero gradients shaped like the network's parameters.
    pub fn zeros_like(network: &SnnNetwork) -> Self {
        let per_layer = network
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Conv { conv, .. } => Some(LayerGrads {
                    weight: Tensor::zeros(conv.weight().shape()),
                    bias: Tensor::zeros(conv.bias().shape()),
                }),
                Layer::Linear { linear, .. } => Some(LayerGrads {
                    weight: Tensor::zeros(linear.weight().shape()),
                    bias: Tensor::zeros(linear.bias().shape()),
                }),
                Layer::Pool { .. } => None,
            })
            .collect();
        NetworkGradients { per_layer }
    }

    /// Per-layer gradients (None for pooling layers).
    pub fn per_layer(&self) -> &[Option<LayerGrads>] {
        &self.per_layer
    }

    /// Adds another gradient set element-wise (e.g. to average over a batch).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the structures differ.
    pub fn accumulate(&mut self, other: &NetworkGradients) -> Result<(), SnnError> {
        if self.per_layer.len() != other.per_layer.len() {
            return Err(SnnError::shape(
                &[self.per_layer.len()],
                &[other.per_layer.len()],
                "NetworkGradients::accumulate",
            ));
        }
        for (a, b) in self.per_layer.iter_mut().zip(other.per_layer.iter()) {
            match (a, b) {
                (Some(ga), Some(gb)) => {
                    ga.weight += &gb.weight;
                    ga.bias += &gb.bias;
                }
                (None, None) => {}
                _ => {
                    return Err(SnnError::config(
                        "gradients",
                        "layer structure mismatch between gradient sets",
                    ))
                }
            }
        }
        Ok(())
    }

    /// Scales every gradient by `factor` (e.g. `1 / batch_size`).
    pub fn scale(&mut self, factor: f32) {
        for grads in self.per_layer.iter_mut().flatten() {
            grads.weight.map_inplace(|x| x * factor);
            grads.bias.map_inplace(|x| x * factor);
        }
    }

    /// Global L2 norm over all gradients, useful for clipping and diagnostics.
    pub fn global_norm(&self) -> f32 {
        self.per_layer
            .iter()
            .flatten()
            .map(|g| g.weight.norm().powi(2) + g.bias.norm().powi(2))
            .sum::<f32>()
            .sqrt()
    }

    /// Clips the global norm to `max_norm` (no-op if already smaller).
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }
}

/// Result of one forward/backward pass on a single sample.
#[derive(Debug, Clone)]
pub struct SampleResult {
    /// Cross-entropy loss.
    pub loss: f32,
    /// Class logits (population spike counts per class).
    pub logits: Vec<f32>,
    /// Whether the prediction was correct.
    pub correct: bool,
    /// Parameter gradients.
    pub gradients: NetworkGradients,
    /// Total spikes emitted by all LIF layers across all timesteps.
    pub total_spikes: u64,
}

/// Per-layer forward cache for one sample.
struct LayerCache {
    /// Layer inputs per timestep, kept as [`SpikePlane`]s so the backward can
    /// run its event-aware kernels (gather im2col lowering, event pool
    /// argmax) straight off the stored active-index lists.
    inputs: Vec<SpikePlane>,
    /// Membrane potentials (at thresholding) per timestep — weight layers only.
    membranes: Vec<Tensor>,
}

/// Everything the backward pass needs from one forward sweep.
struct ForwardPass {
    caches: Vec<LayerCache>,
    class_scores: Vec<f32>,
    total_spikes: u64,
    timesteps: usize,
    /// Whether the first layer's input is the identical frame at every
    /// timestep (direct coding with `timesteps > 1`) — the backward then
    /// lowers it once and reuses the columns across timesteps.
    replay_first: bool,
}

/// The cached forward sweep of one sample, for callers (benches, custom
/// training loops) that drive [`Bptt::backward_sweep`] separately from
/// [`Bptt::forward_sweep`] — e.g. to measure or repeat the backward pass
/// against one fixed forward.
pub struct ForwardSweep(ForwardPass);

/// Reusable per-worker scratch for the scratch-backed BPTT backward: the
/// layer-level [`GradScratch`], the per-timestep [`ConvGrads`]/[`LinearGrads`]
/// output buffers, the membrane-gradient and carry tensors of the BPTT
/// recursion, the ping-pong per-timestep gradient frames, and the cached
/// lowering of a replayed input. Owned long-lived by each trainer worker and
/// reused across every sample it processes: after the first sample warms the
/// buffers, the backward performs **zero heap allocations per timestep**.
#[derive(Debug, Default)]
pub struct BpttScratch {
    grad: GradScratch,
    conv: ConvGrads,
    linear: LinearGrads,
    grad_u: Tensor,
    carry: Tensor,
    grad_cur: Vec<Tensor>,
    grad_next: Vec<Tensor>,
    replay_lowering: CachedLowering,
}

impl BpttScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BpttScratch::default()
    }
}

/// Fake-quantized working copies of a network's weight layers — the layers
/// the QAT forward actually executes. Built once per batch by
/// [`Bptt::prepare`] and shared (immutably) across every sample and worker
/// thread of that batch, instead of re-cloning all weights per sample. For
/// [`Precision::Fp32`] the copies equal the master weights.
#[derive(Debug, Clone)]
pub struct EffectiveLayers {
    layers: Vec<Layer>,
}

impl EffectiveLayers {
    /// The layer sequence the forward sweep executes.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }
}

/// Memory/compute knobs of the BPTT backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpttConfig {
    /// Byte budget for caching the im2col lowering of a **replayed** input
    /// (direct coding presents the identical frame at every timestep) across
    /// the backward's time loop, instead of re-lowering the same frame `T`
    /// times. The budget covers the cache's full footprint — the staging
    /// columns plus the pre-transposed copy, i.e. twice the lowering's size.
    /// A lowering that does not fit falls back to per-timestep rebuilding;
    /// `0` disables the cache. Gradients are bitwise identical either way —
    /// the cache only skips recomputing an identical matrix.
    pub cache_lowerings: usize,
}

impl Default for BpttConfig {
    fn default() -> Self {
        BpttConfig {
            // Generous for every model in this workspace: the largest
            // replayed lowering (paper-scale CONV1_1, 27 × 1024 f32) is
            // ~108 KiB.
            cache_lowerings: 8 * 1024 * 1024,
        }
    }
}

/// Surrogate-gradient BPTT engine.
#[derive(Debug, Clone, Copy)]
pub struct Bptt {
    /// The surrogate derivative of the spike non-linearity.
    pub surrogate: SurrogateKind,
    /// Weight precision for QAT (`Fp32` disables fake-quantization).
    pub precision: Precision,
    /// Backward-pass memory/compute configuration.
    pub config: BpttConfig,
}

impl Bptt {
    /// Creates a BPTT engine with the default [`BpttConfig`].
    pub fn new(surrogate: SurrogateKind, precision: Precision) -> Self {
        Bptt {
            surrogate,
            precision,
            config: BpttConfig::default(),
        }
    }

    /// Creates a BPTT engine with an explicit [`BpttConfig`].
    ///
    /// # Example
    ///
    /// One forward/backward pass with the replayed-lowering cache disabled —
    /// gradients are bitwise identical either way; the budget only controls
    /// whether an identical matrix is recomputed per timestep:
    ///
    /// ```
    /// use snn_core::encoding::Encoder;
    /// use snn_core::network::{vgg9, Vgg9Config};
    /// use snn_core::quant::Precision;
    /// use snn_core::tensor::Tensor;
    /// use snn_train::bptt::{Bptt, BpttConfig};
    /// use snn_train::surrogate::SurrogateKind;
    ///
    /// # fn main() -> Result<(), snn_core::SnnError> {
    /// let net = vgg9(&Vgg9Config::cifar10_small())?;
    /// let bptt = Bptt::with_config(
    ///     SurrogateKind::paper_default(),
    ///     Precision::Int4, // QAT: fake-quantized forward, fp32 master weights
    ///     BpttConfig { cache_lowerings: 0 },
    /// );
    /// let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.02).sin().abs());
    /// let result = bptt.sample_gradients(&net, &image, 3, &Encoder::direct(2), 0)?;
    /// assert!(result.loss.is_finite());
    /// assert!(result.gradients.global_norm() > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_config(surrogate: SurrogateKind, precision: Precision, config: BpttConfig) -> Self {
        Bptt {
            surrogate,
            precision,
            config,
        }
    }

    /// Builds the fake-quantized working copies of `network`'s weight layers
    /// the forward sweep executes. Hot training loops call this once per
    /// batch (weights only change at optimizer steps, between batches) and
    /// pass the result to [`Bptt::sample_gradients_prepared`] for every
    /// sample, sharing one set of quantized weights across worker threads.
    ///
    /// Each convolution's transposed filter bank `Wᵀ`
    /// ([`snn_core::layers::Conv2d::transposed_weight`]) is warmed here,
    /// once per batch — the
    /// event-driven forward gathers its rows per spike tap and the backward's
    /// fused input-gradient kernel ([`crate::grad::conv2d_input_grad_into`])
    /// uses it as the pre-transposed matmul operand, so neither path pays a
    /// weight transpose inside the time loop.
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn prepare(&self, network: &SnnNetwork) -> Result<EffectiveLayers, SnnError> {
        let layers: Vec<Layer> = network
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Conv { name, conv, bn } => Ok(Layer::Conv {
                    name: name.clone(),
                    conv: conv.to_precision(self.precision)?,
                    bn: bn.clone(),
                }),
                Layer::Linear { name, linear } => Ok(Layer::Linear {
                    name: name.clone(),
                    linear: linear.to_precision(self.precision)?,
                }),
                Layer::Pool { name, pool } => Ok(Layer::Pool {
                    name: name.clone(),
                    pool: *pool,
                }),
            })
            .collect::<Result<_, SnnError>>()?;
        for layer in &layers {
            if let Layer::Conv { conv, .. } = layer {
                conv.transposed_weight();
            }
        }
        Ok(EffectiveLayers { layers })
    }

    /// Runs a forward and backward pass for one labelled sample, returning the
    /// loss and the parameter gradients (computed with the straight-through
    /// estimator when QAT is enabled).
    ///
    /// # Errors
    ///
    /// Propagates shape/configuration errors from the layers and encoder.
    pub fn sample_gradients(
        &self,
        network: &SnnNetwork,
        image: &Tensor,
        label: usize,
        encoder: &Encoder,
        seed: u64,
    ) -> Result<SampleResult, SnnError> {
        let effective = self.prepare(network)?;
        self.sample_gradients_prepared(network, &effective, image, label, encoder, seed)
    }

    /// Like [`Bptt::sample_gradients`] but with the quantized working layers
    /// supplied by an earlier [`Bptt::prepare`] call, so batches amortize the
    /// per-sample weight cloning. Allocates a fresh [`BpttScratch`] per call;
    /// hot loops use [`Bptt::sample_gradients_with`] to reuse one.
    ///
    /// # Errors
    ///
    /// Same as [`Bptt::sample_gradients`].
    pub fn sample_gradients_prepared(
        &self,
        network: &SnnNetwork,
        effective: &EffectiveLayers,
        image: &Tensor,
        label: usize,
        encoder: &Encoder,
        seed: u64,
    ) -> Result<SampleResult, SnnError> {
        let mut scratch = BpttScratch::new();
        self.sample_gradients_with(
            network,
            effective,
            image,
            label,
            encoder,
            seed,
            &mut scratch,
        )
    }

    /// The production entry point of the training hot loop: event-driven
    /// forward sweep ([`Bptt::forward_sweep`]) followed by the scratch-backed
    /// event-aware backward ([`Bptt::backward_sweep`]), with every backward
    /// intermediate drawn from the caller's long-lived [`BpttScratch`] — the
    /// per-timestep backward allocates nothing once the scratch is warm.
    /// Losses, logits and gradients are **bitwise identical** to
    /// [`Bptt::sample_gradients_dense`].
    ///
    /// # Errors
    ///
    /// Same as [`Bptt::sample_gradients`].
    #[allow(clippy::too_many_arguments)]
    pub fn sample_gradients_with(
        &self,
        network: &SnnNetwork,
        effective: &EffectiveLayers,
        image: &Tensor,
        label: usize,
        encoder: &Encoder,
        seed: u64,
        scratch: &mut BpttScratch,
    ) -> Result<SampleResult, SnnError> {
        if label >= network.num_classes() {
            return Err(SnnError::index(label, network.num_classes(), "class label"));
        }
        let forward = self.forward_event(network, effective, image, encoder, seed)?;
        self.backward_scratch(network, effective, &forward, label, scratch)
    }

    /// Runs the event-driven forward sweep alone, returning the cached
    /// activations/membranes for a later [`Bptt::backward_sweep`].
    ///
    /// # Errors
    ///
    /// Same as [`Bptt::sample_gradients`].
    pub fn forward_sweep(
        &self,
        network: &SnnNetwork,
        effective: &EffectiveLayers,
        image: &Tensor,
        encoder: &Encoder,
        seed: u64,
    ) -> Result<ForwardSweep, SnnError> {
        Ok(ForwardSweep(
            self.forward_event(network, effective, image, encoder, seed)?,
        ))
    }

    /// Runs the scratch-backed backward pass against a cached forward sweep.
    /// Repeatable: the sweep is only read, so benches and custom loops can
    /// drive the backward many times against one forward.
    ///
    /// # Errors
    ///
    /// Same as [`Bptt::sample_gradients`].
    pub fn backward_sweep(
        &self,
        network: &SnnNetwork,
        effective: &EffectiveLayers,
        sweep: &ForwardSweep,
        label: usize,
        scratch: &mut BpttScratch,
    ) -> Result<SampleResult, SnnError> {
        if label >= network.num_classes() {
            return Err(SnnError::index(label, network.num_classes(), "class label"));
        }
        self.backward_scratch(network, effective, &sweep.0, label, scratch)
    }

    /// The retained dense reference sweep: unrolls the network with dense
    /// per-layer `forward`/`step_tensor` calls exactly as the trainer did
    /// before the event-driven port. Kept (rather than deleted) because every
    /// bitwise guarantee of the event path is stated against it — the
    /// equivalence test and the `train_epoch` bench arm drive it directly.
    ///
    /// # Errors
    ///
    /// Same as [`Bptt::sample_gradients`].
    pub fn sample_gradients_dense(
        &self,
        network: &SnnNetwork,
        image: &Tensor,
        label: usize,
        encoder: &Encoder,
        seed: u64,
    ) -> Result<SampleResult, SnnError> {
        if label >= network.num_classes() {
            return Err(SnnError::index(label, network.num_classes(), "class label"));
        }
        let effective = self.prepare(network)?;
        let forward = self.forward_dense(network, &effective, image, encoder, seed)?;
        self.backward(network, &effective, forward, label)
    }

    /// Event-driven forward sweep with BPTT caching: activations flow through
    /// ping-pong [`SpikePlane`]s, conv/linear layers dispatch between the
    /// spike-gather path and the blocked dense im2col fallback
    /// (`forward_plane_into`), LIF populations emit spike planes directly
    /// (`step_plane`), and under direct coding the stateless input layer's
    /// currents are computed once and replayed across timesteps. Produces
    /// caches bitwise-identical to [`Bptt::forward_dense`].
    fn forward_event(
        &self,
        network: &SnnNetwork,
        effective: &EffectiveLayers,
        image: &Tensor,
        encoder: &Encoder,
        seed: u64,
    ) -> Result<ForwardPass, SnnError> {
        let lif = network.lif_params();
        let layers = effective.layers();
        let mut frames: Vec<SpikePlane> = Vec::new();
        encoder.encode_planes_into(image, seed, &mut frames)?;
        let timesteps = frames.len();

        let mut caches: Vec<LayerCache> = layers
            .iter()
            .map(|_| LayerCache {
                inputs: Vec::with_capacity(timesteps),
                membranes: Vec::with_capacity(timesteps),
            })
            .collect();
        let mut lif_states: Vec<Option<LifPopulation>> = vec![None; layers.len()];
        let mut class_scores = vec![0.0_f32; network.num_classes()];
        let group = network.population() / network.num_classes();
        let mut total_spikes = 0u64;

        // Scratch shared by every layer of the sweep: im2col + matmul panel
        // + event-gather buffers, the membrane-current tensor, and the
        // ping-pong planes. Allocated once per sample, reused across all
        // timesteps and layers.
        let mut scratch = ConvScratch::new();
        let mut current = Tensor::zeros(&[0]);
        let mut first_current = Tensor::zeros(&[0]);
        // Direct coding presents the identical analog frame at every
        // timestep, so the stateless first weight layer produces the same
        // currents each step: compute once, replay afterwards.
        let replay_first = encoder.scheme == CodingScheme::Direct && timesteps > 1;
        let mut plane_a = SpikePlane::new();
        let mut plane_b = SpikePlane::new();
        let mut src: &mut SpikePlane = &mut plane_a;
        let mut dst: &mut SpikePlane = &mut plane_b;

        for (t, frame) in frames.iter().enumerate() {
            for (li, layer) in layers.iter().enumerate() {
                let input: &SpikePlane = if li == 0 { frame } else { src };
                caches[li].inputs.push(input.clone());
                match layer {
                    Layer::Conv { conv, bn, .. } => {
                        let cur: &Tensor = if li == 0 && replay_first {
                            if t == 0 {
                                conv.forward_plane_into(input, &mut scratch, &mut first_current)?;
                                if let Some(b) = bn {
                                    b.forward_inplace(&mut first_current)?;
                                }
                            }
                            &first_current
                        } else {
                            conv.forward_plane_into(input, &mut scratch, &mut current)?;
                            if let Some(b) = bn {
                                b.forward_inplace(&mut current)?;
                            }
                            &current
                        };
                        let state = lif_states[li]
                            .get_or_insert_with(|| LifPopulation::new(cur.len(), lif));
                        let spikes = state.step_plane(cur, dst)?;
                        caches[li]
                            .membranes
                            .push(Tensor::from_vec(state.membrane().to_vec(), cur.shape())?);
                        total_spikes += spikes as u64;
                    }
                    Layer::Pool { pool, .. } => {
                        pool.forward_plane(input, dst)?;
                    }
                    Layer::Linear { linear, .. } => {
                        let cur: &Tensor = if li == 0 && replay_first {
                            if t == 0 {
                                linear.forward_plane_into(input, &mut first_current)?;
                            }
                            &first_current
                        } else {
                            linear.forward_plane_into(input, &mut current)?;
                            &current
                        };
                        let state = lif_states[li]
                            .get_or_insert_with(|| LifPopulation::new(cur.len(), lif));
                        let spikes = state.step_plane(cur, dst)?;
                        caches[li]
                            .membranes
                            .push(Tensor::from_vec(state.membrane().to_vec(), cur.shape())?);
                        total_spikes += spikes as u64;
                    }
                }
                std::mem::swap(&mut src, &mut dst);
            }
            // Population readout: after the final swap, `src` holds the
            // output layer's spikes.
            let out = src.dense().as_slice();
            for (class, score) in class_scores.iter_mut().enumerate() {
                let start = class * group;
                *score += out[start..(start + group).min(out.len())]
                    .iter()
                    .sum::<f32>();
            }
        }

        Ok(ForwardPass {
            caches,
            class_scores,
            total_spikes,
            timesteps,
            replay_first,
        })
    }

    /// Dense reference forward sweep (see [`Bptt::sample_gradients_dense`]).
    fn forward_dense(
        &self,
        network: &SnnNetwork,
        effective: &EffectiveLayers,
        image: &Tensor,
        encoder: &Encoder,
        seed: u64,
    ) -> Result<ForwardPass, SnnError> {
        let lif = network.lif_params();
        let layers = effective.layers();
        let frames = encoder.encode(image, seed)?;
        let timesteps = frames.len();

        let mut caches: Vec<LayerCache> = layers
            .iter()
            .map(|_| LayerCache {
                inputs: Vec::with_capacity(timesteps),
                membranes: Vec::with_capacity(timesteps),
            })
            .collect();
        let mut lif_states: Vec<Option<LifPopulation>> = vec![None; layers.len()];
        let mut class_scores = vec![0.0_f32; network.num_classes()];
        let group = network.population() / network.num_classes();
        let mut total_spikes = 0u64;

        for frame in &frames {
            let mut x = frame.clone();
            for (li, layer) in layers.iter().enumerate() {
                caches[li].inputs.push(SpikePlane::from_tensor(&x));
                match layer {
                    Layer::Conv { conv, bn, .. } => {
                        let mut current = conv.forward(&x)?;
                        if let Some(b) = bn {
                            current = b.forward(&current)?;
                        }
                        let state = lif_states[li]
                            .get_or_insert_with(|| LifPopulation::new(current.len(), lif));
                        let spikes = state.step_tensor(&current)?;
                        caches[li].membranes.push(Tensor::from_vec(
                            state.membrane().to_vec(),
                            current.shape(),
                        )?);
                        total_spikes += spikes.count_nonzero() as u64;
                        x = spikes;
                    }
                    Layer::Pool { pool, .. } => {
                        x = pool.forward(&x)?;
                    }
                    Layer::Linear { linear, .. } => {
                        let current = linear.forward(&x)?;
                        let state = lif_states[li]
                            .get_or_insert_with(|| LifPopulation::new(current.len(), lif));
                        let spikes = state.step_tensor(&current)?;
                        caches[li].membranes.push(Tensor::from_vec(
                            state.membrane().to_vec(),
                            current.shape(),
                        )?);
                        total_spikes += spikes.count_nonzero() as u64;
                        x = spikes;
                    }
                }
            }
            let out = x.as_slice();
            for (class, score) in class_scores.iter_mut().enumerate() {
                let start = class * group;
                *score += out[start..(start + group).min(out.len())]
                    .iter()
                    .sum::<f32>();
            }
        }

        Ok(ForwardPass {
            caches,
            class_scores,
            total_spikes,
            timesteps,
            replay_first: encoder.scheme == CodingScheme::Direct && timesteps > 1,
        })
    }

    /// Loss + reverse sweep shared by the event-driven and dense forwards.
    fn backward(
        &self,
        network: &SnnNetwork,
        effective: &EffectiveLayers,
        forward: ForwardPass,
        label: usize,
    ) -> Result<SampleResult, SnnError> {
        let lif = network.lif_params();
        let ForwardPass {
            caches,
            class_scores,
            total_spikes,
            timesteps,
            ..
        } = forward;
        let effective = effective.layers();

        // ---------- Loss ----------
        let (loss, grad_logits) = cross_entropy(&class_scores, label)?;
        let prediction = class_scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);

        // Seed gradient: every output-population neuron receives the gradient
        // of its class group at every timestep (the readout is a plain sum).
        let population = network.population();
        let group = population / network.num_classes();
        let mut seed_grad = vec![0.0_f32; population];
        for (neuron, g) in seed_grad.iter_mut().enumerate() {
            *g = grad_logits[neuron / group];
        }
        let seed_grad = Tensor::from_vec(seed_grad, &[population])?;

        // ---------- Backward ----------
        let mut gradients = NetworkGradients::zeros_like(network);
        // Gradient w.r.t. the *output spikes* of the layer currently being
        // processed, one tensor per timestep.
        let mut grad_out: Vec<Tensor> = vec![seed_grad; timesteps];

        for (li, layer) in effective.iter().enumerate().rev() {
            match layer {
                Layer::Pool { pool, .. } => {
                    let mut grad_in = Vec::with_capacity(timesteps);
                    for (t, grad) in grad_out.iter().enumerate().take(timesteps) {
                        grad_in.push(pool_backward(pool, caches[li].inputs[t].dense(), grad)?);
                    }
                    grad_out = grad_in;
                }
                Layer::Conv { conv, bn, .. } => {
                    let theta = lif.threshold;
                    let beta = lif.beta;
                    let mut grad_in: Vec<Tensor> = vec![Tensor::default(); timesteps];
                    let mut carry = Tensor::zeros(caches[li].membranes[0].shape());
                    let acc = gradients.per_layer[li]
                        .as_mut()
                        .expect("conv layer has grads");
                    for t in (0..timesteps).rev() {
                        let u = &caches[li].membranes[t];
                        // ∂L/∂u[t] = ∂L/∂s[t]·σ'(u[t]) + β·carry
                        let mut grad_u = grad_out[t]
                            .zip_map(u, |gs, uu| gs * self.surrogate.derivative(uu, theta))?;
                        grad_u += &carry.scale(beta);
                        carry = grad_u.clone();
                        // Through the (eval-mode) BN affine transform.
                        let grad_current = match bn {
                            Some(b) => {
                                let plane = u.shape()[1] * u.shape()[2];
                                let mut g = grad_u.clone();
                                let data = g.as_mut_slice();
                                for c in 0..b.channels() {
                                    let scale = b.gamma().as_slice()[c]
                                        / (b.running_var().as_slice()[c] + b.epsilon()).sqrt();
                                    for v in &mut data[c * plane..(c + 1) * plane] {
                                        *v *= scale;
                                    }
                                }
                                g
                            }
                            None => grad_u,
                        };
                        let grads =
                            conv2d_backward(conv, caches[li].inputs[t].dense(), &grad_current)?;
                        acc.weight += &grads.weight;
                        acc.bias += &grads.bias;
                        grad_in[t] = grads.input;
                    }
                    grad_out = grad_in;
                }
                Layer::Linear { linear, .. } => {
                    let theta = lif.threshold;
                    let beta = lif.beta;
                    let mut grad_in: Vec<Tensor> = vec![Tensor::default(); timesteps];
                    let mut carry = Tensor::zeros(caches[li].membranes[0].shape());
                    let acc = gradients.per_layer[li]
                        .as_mut()
                        .expect("linear layer has grads");
                    for t in (0..timesteps).rev() {
                        let u = &caches[li].membranes[t];
                        let grad_out_flat = grad_out[t].reshape(u.shape())?;
                        let mut grad_u = grad_out_flat
                            .zip_map(u, |gs, uu| gs * self.surrogate.derivative(uu, theta))?;
                        grad_u += &carry.scale(beta);
                        carry = grad_u.clone();
                        let grads = linear_backward(
                            linear,
                            &caches[li].inputs[t]
                                .dense()
                                .reshape(&[linear.in_features()])?,
                            &grad_u.reshape(&[linear.out_features()])?,
                        )?;
                        acc.weight += &grads.weight;
                        acc.bias += &grads.bias;
                        // Reshape the input gradient back to the input's shape.
                        grad_in[t] = grads.input.reshape(caches[li].inputs[t].shape())?;
                    }
                    grad_out = grad_in;
                }
            }
        }

        Ok(SampleResult {
            loss,
            logits: class_scores,
            correct: prediction == label,
            gradients,
            total_spikes,
        })
    }

    /// The scratch-backed production backward: the same loss seeding and
    /// detached-reset reverse recursion as [`Bptt::backward`], but every
    /// per-timestep intermediate (membrane-gradient and carry tensors, layer
    /// gradient buffers, lowerings, matmul repack/panel scratch, ping-pong
    /// per-timestep gradient frames) lives in the caller's [`BpttScratch`]
    /// and the layer kernels are the event-aware `_into` family of
    /// [`crate::grad`] — after warmup the time loop performs zero heap
    /// allocations. Two further event/structure exploits: the first layer's
    /// input gradient (which has no consumer) is never computed, and a
    /// replayed direct-coded input is lowered once and its columns reused
    /// across all timesteps under the [`BpttConfig::cache_lowerings`] budget.
    /// Gradients are **bitwise identical** to [`Bptt::backward`] on the same
    /// forward pass.
    fn backward_scratch(
        &self,
        network: &SnnNetwork,
        effective: &EffectiveLayers,
        forward: &ForwardPass,
        label: usize,
        scratch: &mut BpttScratch,
    ) -> Result<SampleResult, SnnError> {
        let lif = network.lif_params();
        let caches = &forward.caches;
        let timesteps = forward.timesteps;
        let effective = effective.layers();

        // ---------- Loss ----------
        let (loss, grad_logits) = cross_entropy(&forward.class_scores, label)?;
        let prediction = forward
            .class_scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);

        let population = network.population();
        let group = population / network.num_classes();

        let BpttScratch {
            grad: gscratch,
            conv: conv_buf,
            linear: linear_buf,
            grad_u,
            carry,
            grad_cur,
            grad_next,
            replay_lowering,
        } = scratch;

        // Seed gradient: every output-population neuron receives the gradient
        // of its class group at every timestep (the readout is a plain sum).
        if grad_cur.len() < timesteps {
            grad_cur.resize_with(timesteps, Tensor::default);
        }
        if grad_next.len() < timesteps {
            grad_next.resize_with(timesteps, Tensor::default);
        }
        for g in grad_cur.iter_mut().take(timesteps) {
            g.reset_to(&[population], 0.0);
            for (neuron, v) in g.as_mut_slice().iter_mut().enumerate() {
                *v = grad_logits[neuron / group];
            }
        }

        // ---------- Backward ----------
        let mut gradients = NetworkGradients::zeros_like(network);
        for (li, layer) in effective.iter().enumerate().rev() {
            // The first layer's input gradient has no consumer (its input is
            // the encoded image), so its matmul + col2im are skipped.
            let need_input = li > 0;
            match layer {
                Layer::Pool { pool, .. } => {
                    if !need_input {
                        continue;
                    }
                    for t in 0..timesteps {
                        pool_backward_into(
                            pool,
                            &caches[li].inputs[t],
                            &grad_cur[t],
                            gscratch,
                            &mut grad_next[t],
                        )?;
                    }
                    std::mem::swap(grad_cur, grad_next);
                }
                Layer::Conv { conv, bn, .. } => {
                    let theta = lif.threshold;
                    let beta = lif.beta;
                    carry.reset_to(caches[li].membranes[0].shape(), 0.0);
                    // The membrane shape is constant across the layer's time
                    // loop, so grad_u is shaped once here; every element is
                    // overwritten by the derivative write below, making the
                    // one-time zero fill shape-keeping only.
                    grad_u.reset_to(caches[li].membranes[0].shape(), 0.0);
                    // A replayed input frame (direct coding) lowers to the
                    // same column matrix at every timestep: build it once
                    // under the memory budget and reuse it across the time
                    // loop instead of re-lowering the identical frame. The
                    // cache keeps the staging columns alongside the
                    // transposed copy, so it holds the budget to twice the
                    // lowering's size.
                    let out_shape = conv.output_shape(caches[li].inputs[0].shape())?;
                    let lowering_bytes = conv.coefficients_per_output()
                        * out_shape[1]
                        * out_shape[2]
                        * std::mem::size_of::<f32>();
                    let replayed = forward.replay_first
                        && li == 0
                        && timesteps > 1
                        && 2 * lowering_bytes <= self.config.cache_lowerings;
                    if replayed {
                        replay_lowering.prepare(conv, &caches[li].inputs[0])?;
                    }
                    let acc = gradients.per_layer[li]
                        .as_mut()
                        .expect("conv layer has grads");
                    for t in (0..timesteps).rev() {
                        let u = &caches[li].membranes[t];
                        let go_t = &grad_cur[t];
                        if go_t.len() != u.len() {
                            return Err(SnnError::shape(u.shape(), go_t.shape(), "bptt conv grad"));
                        }
                        // ∂L/∂u[t] = ∂L/∂s[t]·σ'(u[t]) + β·carry
                        {
                            let gu = grad_u.as_mut_slice();
                            for ((g, &go), &uu) in gu
                                .iter_mut()
                                .zip(go_t.as_slice().iter())
                                .zip(u.as_slice().iter())
                            {
                                *g = go * self.surrogate.derivative(uu, theta);
                            }
                            for (g, &c) in gu.iter_mut().zip(carry.as_slice().iter()) {
                                *g += c * beta;
                            }
                        }
                        carry.copy_from(grad_u);
                        // Through the (eval-mode) BN affine transform.
                        if let Some(b) = bn {
                            let plane = u.shape()[1] * u.shape()[2];
                            let data = grad_u.as_mut_slice();
                            for c in 0..b.channels() {
                                let scale = b.gamma().as_slice()[c]
                                    / (b.running_var().as_slice()[c] + b.epsilon()).sqrt();
                                for v in &mut data[c * plane..(c + 1) * plane] {
                                    *v *= scale;
                                }
                            }
                        }
                        if replayed {
                            conv2d_backward_cached(
                                conv,
                                replay_lowering,
                                caches[li].inputs[t].shape(),
                                grad_u,
                                gscratch,
                                conv_buf,
                                need_input,
                            )?;
                        } else {
                            conv2d_backward_into(
                                conv,
                                &caches[li].inputs[t],
                                grad_u,
                                gscratch,
                                conv_buf,
                                need_input,
                            )?;
                        }
                        acc.weight += &conv_buf.weight;
                        acc.bias += &conv_buf.bias;
                        if need_input {
                            grad_next[t].copy_from(&conv_buf.input);
                        }
                    }
                    if need_input {
                        std::mem::swap(grad_cur, grad_next);
                    }
                }
                Layer::Linear { linear, .. } => {
                    let theta = lif.threshold;
                    let beta = lif.beta;
                    carry.reset_to(caches[li].membranes[0].shape(), 0.0);
                    // Shaped once per layer; fully overwritten per timestep.
                    grad_u.reset_to(caches[li].membranes[0].shape(), 0.0);
                    let acc = gradients.per_layer[li]
                        .as_mut()
                        .expect("linear layer has grads");
                    for t in (0..timesteps).rev() {
                        let u = &caches[li].membranes[t];
                        let go_t = &grad_cur[t];
                        if go_t.len() != u.len() {
                            return Err(SnnError::shape(
                                u.shape(),
                                go_t.shape(),
                                "bptt linear grad",
                            ));
                        }
                        {
                            let gu = grad_u.as_mut_slice();
                            for ((g, &go), &uu) in gu
                                .iter_mut()
                                .zip(go_t.as_slice().iter())
                                .zip(u.as_slice().iter())
                            {
                                *g = go * self.surrogate.derivative(uu, theta);
                            }
                            for (g, &c) in gu.iter_mut().zip(carry.as_slice().iter()) {
                                *g += c * beta;
                            }
                        }
                        carry.copy_from(grad_u);
                        linear_backward_into(
                            linear,
                            &caches[li].inputs[t],
                            grad_u,
                            gscratch,
                            linear_buf,
                            need_input,
                        )?;
                        acc.weight += &linear_buf.weight;
                        acc.bias += &linear_buf.bias;
                        if need_input {
                            grad_next[t].copy_from(&linear_buf.input);
                        }
                    }
                    if need_input {
                        std::mem::swap(grad_cur, grad_next);
                    }
                }
            }
        }

        Ok(SampleResult {
            loss,
            logits: forward.class_scores.clone(),
            correct: prediction == label,
            gradients,
            total_spikes: forward.total_spikes,
        })
    }
}

impl Default for Bptt {
    fn default() -> Self {
        Bptt::new(SurrogateKind::paper_default(), Precision::Fp32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use snn_core::network::{vgg9, Vgg9Config};

    fn small_net() -> SnnNetwork {
        vgg9(&Vgg9Config::cifar10_small()).unwrap()
    }

    fn sample_image() -> Tensor {
        Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.023).sin().abs())
    }

    #[test]
    fn gradients_have_network_structure() {
        let net = small_net();
        let g = NetworkGradients::zeros_like(&net);
        assert_eq!(g.per_layer().len(), net.layers().len());
        let with_grads = g.per_layer().iter().filter(|x| x.is_some()).count();
        assert_eq!(with_grads, 9);
    }

    #[test]
    fn sample_gradients_produce_finite_nonzero_grads() {
        let net = small_net();
        let bptt = Bptt::default();
        let result = bptt
            .sample_gradients(&net, &sample_image(), 3, &Encoder::direct(2), 0)
            .unwrap();
        assert!(result.loss.is_finite());
        assert!(result.loss > 0.0);
        assert_eq!(result.logits.len(), 10);
        assert!(result.total_spikes > 0);
        let norm = result.gradients.global_norm();
        assert!(norm.is_finite());
        assert!(norm > 0.0, "gradient norm should be non-zero, got {norm}");
    }

    /// The tentpole guarantee of the event-driven training sweep: losses,
    /// logits, spike counts and every weight/bias gradient are bitwise-equal
    /// to the retained dense reference sweep — at full precision and under
    /// QAT, for direct (analog input + replay) and rate (stochastic binary
    /// input) coding.
    #[test]
    fn event_driven_sweep_bitwise_equals_dense_reference() {
        let net = small_net();
        let image = sample_image();
        let combos = [
            (Precision::Fp32, Encoder::direct(3), 2usize, 0u64),
            (Precision::Fp32, Encoder::rate(3), 5, 11),
            (Precision::Int4, Encoder::direct(2), 7, 3),
            (Precision::Int4, Encoder::rate(3), 0, 42),
        ];
        for (precision, encoder, label, seed) in combos {
            let bptt = Bptt::new(SurrogateKind::paper_default(), precision);
            let event = bptt
                .sample_gradients(&net, &image, label, &encoder, seed)
                .unwrap();
            let dense = bptt
                .sample_gradients_dense(&net, &image, label, &encoder, seed)
                .unwrap();
            let ctx = format!("{precision:?}/{encoder:?}");
            assert_eq!(event.loss.to_bits(), dense.loss.to_bits(), "loss {ctx}");
            assert_eq!(event.correct, dense.correct, "correct {ctx}");
            assert_eq!(event.total_spikes, dense.total_spikes, "spikes {ctx}");
            for (e, d) in event.logits.iter().zip(dense.logits.iter()) {
                assert_eq!(e.to_bits(), d.to_bits(), "logits {ctx}");
            }
            for (li, (eg, dg)) in event
                .gradients
                .per_layer()
                .iter()
                .zip(dense.gradients.per_layer().iter())
                .enumerate()
            {
                match (eg, dg) {
                    (None, None) => {}
                    (Some(eg), Some(dg)) => {
                        for (x, y) in eg.weight.as_slice().iter().zip(dg.weight.as_slice().iter()) {
                            assert_eq!(x.to_bits(), y.to_bits(), "weight grad {ctx} layer {li}");
                        }
                        for (x, y) in eg.bias.as_slice().iter().zip(dg.bias.as_slice().iter()) {
                            assert_eq!(x.to_bits(), y.to_bits(), "bias grad {ctx} layer {li}");
                        }
                    }
                    _ => panic!("gradient structure mismatch at layer {li} ({ctx})"),
                }
            }
        }
    }

    /// Compares two [`SampleResult`]s bit-for-bit (loss, logits, every
    /// gradient).
    fn assert_results_bitwise_eq(a: &SampleResult, b: &SampleResult, ctx: &str) {
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "loss {ctx}");
        assert_eq!(a.correct, b.correct, "correct {ctx}");
        assert_eq!(a.total_spikes, b.total_spikes, "spikes {ctx}");
        for (x, y) in a.logits.iter().zip(b.logits.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "logits {ctx}");
        }
        for (li, (ga, gb)) in a
            .gradients
            .per_layer()
            .iter()
            .zip(b.gradients.per_layer().iter())
            .enumerate()
        {
            match (ga, gb) {
                (None, None) => {}
                (Some(ga), Some(gb)) => {
                    for (x, y) in ga.weight.as_slice().iter().zip(gb.weight.as_slice().iter()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "weight grad {ctx} layer {li}");
                    }
                    for (x, y) in ga.bias.as_slice().iter().zip(gb.bias.as_slice().iter()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "bias grad {ctx} layer {li}");
                    }
                }
                _ => panic!("gradient structure mismatch at layer {li} ({ctx})"),
            }
        }
    }

    /// One long-lived scratch reused across different samples, labels and
    /// seeds produces results bitwise identical to a fresh scratch per call —
    /// no state leaks between samples through the reused buffers.
    #[test]
    fn reused_scratch_is_bitwise_identical_to_fresh_scratch() {
        let net = small_net();
        let bptt = Bptt::new(SurrogateKind::paper_default(), Precision::Int4);
        let effective = bptt.prepare(&net).unwrap();
        let mut scratch = BpttScratch::new();
        let cases = [
            (Encoder::direct(3), 2usize, 0u64, 0.013_f32),
            (Encoder::rate(4), 7, 9, 0.029),
            (Encoder::direct(2), 0, 3, 0.041),
        ];
        for (encoder, label, seed, freq) in cases {
            let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * freq).sin().abs());
            let reused = bptt
                .sample_gradients_with(
                    &net,
                    &effective,
                    &image,
                    label,
                    &encoder,
                    seed,
                    &mut scratch,
                )
                .unwrap();
            let fresh = bptt
                .sample_gradients_prepared(&net, &effective, &image, label, &encoder, seed)
                .unwrap();
            assert_results_bitwise_eq(&reused, &fresh, &format!("{encoder:?}/{label}"));
        }
    }

    /// Disabling the replayed-lowering cache must not change a single bit —
    /// the cache only skips recomputing an identical matrix.
    #[test]
    fn lowering_cache_budget_does_not_change_gradients() {
        let net = small_net();
        let image = sample_image();
        let encoder = Encoder::direct(3);
        let cached = Bptt::new(SurrogateKind::paper_default(), Precision::Fp32);
        assert!(cached.config.cache_lowerings > 0);
        let uncached = Bptt::with_config(
            SurrogateKind::paper_default(),
            Precision::Fp32,
            BpttConfig { cache_lowerings: 0 },
        );
        let a = cached
            .sample_gradients(&net, &image, 4, &encoder, 1)
            .unwrap();
        let b = uncached
            .sample_gradients(&net, &image, 4, &encoder, 1)
            .unwrap();
        assert_results_bitwise_eq(&a, &b, "cache on/off");
    }

    /// The split forward/backward entry points compose to exactly the fused
    /// path, and the backward is repeatable against one cached forward.
    #[test]
    fn forward_backward_split_matches_fused_path() {
        let net = small_net();
        let bptt = Bptt::default();
        let effective = bptt.prepare(&net).unwrap();
        let image = sample_image();
        let encoder = Encoder::direct(2);
        let mut scratch = BpttScratch::new();
        let fused = bptt
            .sample_gradients_with(&net, &effective, &image, 5, &encoder, 7, &mut scratch)
            .unwrap();
        let sweep = bptt
            .forward_sweep(&net, &effective, &image, &encoder, 7)
            .unwrap();
        let first = bptt
            .backward_sweep(&net, &effective, &sweep, 5, &mut scratch)
            .unwrap();
        let second = bptt
            .backward_sweep(&net, &effective, &sweep, 5, &mut scratch)
            .unwrap();
        assert_results_bitwise_eq(&first, &fused, "split vs fused");
        assert_results_bitwise_eq(&second, &first, "repeated backward");
        assert!(bptt
            .backward_sweep(&net, &effective, &sweep, 10, &mut scratch)
            .is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        /// Fuzzed end-to-end bit-equality: the scratch-backed event-aware
        /// sweep equals the retained dense reference for random images,
        /// labels, seeds, precisions and coding schemes.
        #[test]
        fn scratch_sweep_bitwise_equals_dense_reference(
            seed in 0_u64..1000,
            label in 0_usize..10,
            precision_idx in 0_usize..2,
            rate in any::<bool>(),
            timesteps in 1_usize..4,
            freq in 1_u32..50,
        ) {
            let net = small_net();
            let precision = [Precision::Fp32, Precision::Int4][precision_idx];
            let encoder = if rate {
                Encoder::rate(timesteps)
            } else {
                Encoder::direct(timesteps)
            };
            let image = Tensor::from_fn(&[3, 16, 16], |i| {
                ((i as f32) * (freq as f32) * 1e-3).sin().abs()
            });
            let bptt = Bptt::new(SurrogateKind::paper_default(), precision);
            let event = bptt.sample_gradients(&net, &image, label, &encoder, seed).unwrap();
            let dense = bptt
                .sample_gradients_dense(&net, &image, label, &encoder, seed)
                .unwrap();
            assert_results_bitwise_eq(&event, &dense, &format!("{precision:?}/{encoder:?}"));
        }
    }

    #[test]
    fn prepared_layers_are_shared_across_samples_identically() {
        // sample_gradients (per-call prepare) and sample_gradients_prepared
        // (batch-shared prepare) must agree exactly.
        let net = small_net();
        let bptt = Bptt::new(SurrogateKind::paper_default(), Precision::Int4);
        let effective = bptt.prepare(&net).unwrap();
        let encoder = Encoder::direct(2);
        let image = sample_image();
        let a = bptt.sample_gradients(&net, &image, 3, &encoder, 1).unwrap();
        let b = bptt
            .sample_gradients_prepared(&net, &effective, &image, 3, &encoder, 1)
            .unwrap();
        assert_eq!(a.loss.to_bits(), b.loss.to_bits());
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.gradients, b.gradients);
    }

    #[test]
    fn rejects_out_of_range_label() {
        let net = small_net();
        let bptt = Bptt::default();
        assert!(bptt
            .sample_gradients(&net, &sample_image(), 10, &Encoder::direct(1), 0)
            .is_err());
    }

    #[test]
    fn qat_gradients_differ_from_fp32_but_stay_finite() {
        let net = small_net();
        let fp32 = Bptt::new(SurrogateKind::paper_default(), Precision::Fp32);
        let int4 = Bptt::new(SurrogateKind::paper_default(), Precision::Int4);
        let a = fp32
            .sample_gradients(&net, &sample_image(), 1, &Encoder::direct(2), 0)
            .unwrap();
        let b = int4
            .sample_gradients(&net, &sample_image(), 1, &Encoder::direct(2), 0)
            .unwrap();
        assert!(b.gradients.global_norm().is_finite());
        // The quantized forward sees different weights, so spike counts and
        // losses generally differ.
        assert!(a.loss.is_finite() && b.loss.is_finite());
    }

    #[test]
    fn accumulate_and_scale_combine_gradients() {
        let net = small_net();
        let bptt = Bptt::default();
        let r1 = bptt
            .sample_gradients(&net, &sample_image(), 0, &Encoder::direct(1), 0)
            .unwrap();
        let r2 = bptt
            .sample_gradients(&net, &sample_image(), 5, &Encoder::direct(1), 0)
            .unwrap();
        let mut acc = NetworkGradients::zeros_like(&net);
        acc.accumulate(&r1.gradients).unwrap();
        acc.accumulate(&r2.gradients).unwrap();
        acc.scale(0.5);
        assert!(acc.global_norm() > 0.0);
        // Scaling by zero zeroes the norm.
        let mut zeroed = acc.clone();
        zeroed.scale(0.0);
        assert_eq!(zeroed.global_norm(), 0.0);
    }

    #[test]
    fn clip_global_norm_bounds_the_norm() {
        let net = small_net();
        let bptt = Bptt::default();
        let mut r = bptt
            .sample_gradients(&net, &sample_image(), 2, &Encoder::direct(2), 0)
            .unwrap();
        r.gradients.clip_global_norm(0.01);
        assert!(r.gradients.global_norm() <= 0.011);
    }

    #[test]
    fn training_step_reduces_loss_on_single_sample() {
        // One Adam step on one sample should reduce the loss on that sample —
        // the most basic end-to-end sanity check of the gradient direction.
        use crate::optim::{Adam, Optimizer};
        let mut net = small_net();
        let bptt = Bptt::default();
        let image = sample_image();
        let encoder = Encoder::direct(2);
        let before = bptt.sample_gradients(&net, &image, 4, &encoder, 0).unwrap();
        let mut adam = Adam::new(0.01);
        let grads = before.gradients.per_layer().to_vec();
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            if let Some(g) = &grads[li] {
                match layer {
                    Layer::Conv { conv, .. } => {
                        adam.step(&format!("{li}.w"), conv.weight_mut(), &g.weight)
                            .unwrap();
                        adam.step(&format!("{li}.b"), conv.bias_mut(), &g.bias)
                            .unwrap();
                    }
                    Layer::Linear { linear, .. } => {
                        adam.step(&format!("{li}.w"), linear.weight_mut(), &g.weight)
                            .unwrap();
                        adam.step(&format!("{li}.b"), linear.bias_mut(), &g.bias)
                            .unwrap();
                    }
                    Layer::Pool { .. } => {}
                }
            }
        }
        let after = bptt.sample_gradients(&net, &image, 4, &encoder, 0).unwrap();
        assert!(
            after.loss <= before.loss + 1e-4,
            "loss should not increase: before {} after {}",
            before.loss,
            after.loss
        );
    }
}
