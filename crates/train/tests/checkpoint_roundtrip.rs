//! Property coverage of the train-checkpoint format: serialized optimizer
//! state (SGD momentum; Adam moments and per-parameter step counts) and the
//! LR-schedule position must round-trip bitwise through the payload and
//! through disk, and every corruption — a flipped bit anywhere in the file,
//! truncation at any length — must be rejected typed, never trained on.

use proptest::prelude::*;
use snn_core::tensor::Tensor;
use snn_train::schedule::{LrSchedule, ScheduleKind};
use snn_train::trainer::{TrainConfig, TrainReport};
use snn_train::{DataFingerprint, OptimizerState, TrainCheckpoint, TrainCursor};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snn_ckpt_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn fingerprint() -> DataFingerprint {
    DataFingerprint {
        name: "synthetic".to_string(),
        num_classes: 10,
        image_shape: vec![3, 16, 16],
        train_len: 20,
    }
}

/// A tensor whose f32 values come straight from arbitrary u32 bit patterns
/// (may include NaN payloads, infinities, subnormals). The format must
/// carry every bit pattern unchanged.
fn tensor_from_bits(bits: &[u32]) -> Tensor {
    let data: Vec<f32> = bits.iter().map(|b| f32::from_bits(*b)).collect();
    Tensor::from_vec(data, &[bits.len()]).unwrap()
}

fn tensor_map(prefix: &str, tensors: &[Vec<u32>]) -> BTreeMap<String, Tensor> {
    tensors
        .iter()
        .enumerate()
        .map(|(i, bits)| (format!("{prefix}{i}.weight"), tensor_from_bits(bits)))
        .collect()
}

fn bits_of(tensor: &Tensor) -> Vec<u32> {
    tensor.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn checkpoint_with(
    optimizer: OptimizerState,
    schedule: Option<ScheduleKind>,
    cursor: TrainCursor,
) -> TrainCheckpoint {
    let mut config = TrainConfig::quick();
    config.schedule = schedule;
    TrainCheckpoint {
        config,
        data: fingerprint(),
        cursor,
        report: TrainReport::default(),
        weights: Vec::new(),
        optimizer,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SGD state — learning rate, momentum, velocity tensors with arbitrary
    /// f32 bit patterns — survives the payload bitwise. Struct equality
    /// would lie for NaN bits, so the proof is payload-byte equality plus a
    /// bit-level tensor comparison.
    #[test]
    fn sgd_state_roundtrips_bitwise(
        lr_bits in any::<u32>(),
        momentum in 0.0_f32..1.0,
        tensors in collection::vec(collection::vec(any::<u32>(), 1..9), 1..4),
        epoch in 0_usize..100,
        steps in any::<u64>(),
    ) {
        let state = OptimizerState::Sgd {
            lr: f32::from_bits(lr_bits),
            momentum,
            velocity: tensor_map("layer", &tensors),
        };
        let cursor = TrainCursor { epoch, steps, ..TrainCursor::default() };
        let checkpoint = checkpoint_with(state, None, cursor);
        let payload = checkpoint.to_payload().unwrap();
        let restored = TrainCheckpoint::from_payload(&payload).unwrap();
        prop_assert_eq!(restored.to_payload().unwrap(), payload);
        match &restored.optimizer {
            OptimizerState::Sgd { lr, velocity, .. } => {
                prop_assert_eq!(lr.to_bits(), lr_bits);
                for (i, bits) in tensors.iter().enumerate() {
                    prop_assert_eq!(&bits_of(&velocity[&format!("layer{i}.weight")]), bits);
                }
            }
            other => panic!("optimizer kind changed in round trip: {other:?}"),
        }
        prop_assert_eq!(restored.cursor.epoch, epoch);
        prop_assert_eq!(restored.cursor.steps, steps);
    }

    /// Adam state — both moment maps and the per-parameter bias-correction
    /// timesteps — survives the payload bitwise, including hostile f32 bit
    /// patterns in the moments.
    #[test]
    fn adam_state_roundtrips_bitwise(
        first in collection::vec(collection::vec(any::<u32>(), 1..9), 1..4),
        t in collection::vec(any::<u64>(), 1..4),
    ) {
        // Mirror the second moment and steps off the first so shapes agree.
        let second: Vec<Vec<u32>> = first.iter()
            .map(|bits| bits.iter().map(|b| b.wrapping_mul(0x9e37)).collect())
            .collect();
        let steps: BTreeMap<String, u64> = first.iter().enumerate()
            .map(|(i, _)| (format!("layer{i}.weight"), t[i % t.len()]))
            .collect();
        let state = OptimizerState::Adam {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            steps: steps.clone(),
            first_moment: tensor_map("layer", &first),
            second_moment: tensor_map("layer", &second),
        };
        let checkpoint = checkpoint_with(state, None, TrainCursor::default());
        let payload = checkpoint.to_payload().unwrap();
        let restored = TrainCheckpoint::from_payload(&payload).unwrap();
        prop_assert_eq!(restored.to_payload().unwrap(), payload);
        match &restored.optimizer {
            OptimizerState::Adam { steps: rsteps, first_moment, second_moment, .. } => {
                prop_assert_eq!(rsteps, &steps);
                for (i, bits) in first.iter().enumerate() {
                    let key = format!("layer{i}.weight");
                    prop_assert_eq!(&bits_of(&first_moment[&key]), bits);
                    prop_assert_eq!(&bits_of(&second_moment[&key]), &second[i]);
                }
            }
            other => panic!("optimizer kind changed in round trip: {other:?}"),
        }
    }

    /// The LR-schedule position round-trips: the schedule definition rides
    /// in the config and the epoch in the cursor section, and the restored
    /// pair computes a bitwise-identical learning rate.
    #[test]
    fn schedule_position_roundtrips_bitwise(
        base_lr in 1e-5_f32..1.0,
        gamma in 0.1_f32..0.99,
        step in 1_usize..10,
        epoch in 0_usize..50,
        cosine in any::<bool>(),
    ) {
        let schedule = if cosine {
            ScheduleKind::Cosine { base_lr, min_lr: base_lr * 0.01, total_epochs: 64 }
        } else {
            ScheduleKind::Step { base_lr, step, gamma }
        };
        let cursor = TrainCursor { epoch, ..TrainCursor::default() };
        let state = OptimizerState::Sgd {
            lr: schedule.learning_rate(epoch),
            momentum: 0.9,
            velocity: BTreeMap::new(),
        };
        let checkpoint = checkpoint_with(state, Some(schedule), cursor);
        let payload = checkpoint.to_payload().unwrap();
        let restored = TrainCheckpoint::from_payload(&payload).unwrap();
        prop_assert_eq!(restored.config.schedule, Some(schedule));
        prop_assert_eq!(restored.cursor.epoch, epoch);
        let restored_schedule = restored.config.schedule.unwrap();
        prop_assert_eq!(
            restored_schedule.learning_rate(restored.cursor.epoch).to_bits(),
            schedule.learning_rate(epoch).to_bits()
        );
    }

    /// Corruption rejection: flip any single bit of a saved checkpoint file
    /// and the load must fail (CRC-64 trailer or section parsing) — never
    /// return a silently-different checkpoint.
    #[test]
    fn any_single_bit_flip_is_rejected(
        tensors in collection::vec(collection::vec(any::<u32>(), 1..5), 1..3),
        flip_pos in any::<u64>(),
        flip_bit in 0_u8..8,
    ) {
        let state = OptimizerState::Sgd {
            lr: 0.01,
            momentum: 0.9,
            velocity: tensor_map("layer", &tensors),
        };
        let checkpoint = checkpoint_with(state, None, TrainCursor::default());
        let path = temp_path("bitflip.snntrain");
        checkpoint.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (flip_pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << flip_bit;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(
            TrainCheckpoint::load(&path).is_err(),
            "bit flip at byte {} bit {} must be detected", pos, flip_bit
        );
    }

    /// Truncation rejection: cut the saved file at any length short of the
    /// original and the load must fail typed.
    #[test]
    fn any_truncation_is_rejected(cut in any::<u64>()) {
        let state = OptimizerState::Sgd {
            lr: 0.01,
            momentum: 0.9,
            velocity: tensor_map("layer", &[vec![1, 2, 3, 4]]),
        };
        let checkpoint = checkpoint_with(state, None, TrainCursor::default());
        let path = temp_path("truncate.snntrain");
        checkpoint.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = (cut % bytes.len() as u64) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        prop_assert!(
            TrainCheckpoint::load(&path).is_err(),
            "truncation to {} of {} bytes must be detected", keep, bytes.len()
        );
    }
}

/// Disk round-trip with a fully finite state: full struct equality holds.
#[test]
fn finite_checkpoint_roundtrips_through_disk_by_equality() {
    let state = OptimizerState::Adam {
        lr: 5e-4,
        beta1: 0.9,
        beta2: 0.999,
        epsilon: 1e-8,
        steps: BTreeMap::from([("layer0.weight".to_string(), 7_u64)]),
        first_moment: BTreeMap::from([(
            "layer0.weight".to_string(),
            Tensor::from_vec(vec![0.25, -0.5, 1.0], &[3]).unwrap(),
        )]),
        second_moment: BTreeMap::from([(
            "layer0.weight".to_string(),
            Tensor::from_vec(vec![0.01, 0.02, 0.03], &[3]).unwrap(),
        )]),
    };
    let cursor = TrainCursor {
        epoch: 3,
        next_index: 4,
        steps: 19,
        epoch_loss: 12.5,
        correct: 9,
        seen: 16,
        spikes: 42,
    };
    let checkpoint = checkpoint_with(
        state,
        Some(ScheduleKind::Step {
            base_lr: 0.01,
            step: 2,
            gamma: 0.5,
        }),
        cursor,
    );
    let path = temp_path("finite.snntrain");
    checkpoint.save(&path).unwrap();
    let restored = TrainCheckpoint::load(&path).unwrap();
    assert_eq!(restored, checkpoint);
    std::fs::remove_file(&path).ok();
}
