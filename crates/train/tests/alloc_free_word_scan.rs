//! Proves the word-scan kernels' allocation contract with a counting global
//! allocator, on both sides of the network:
//!
//! * **Forward** — a warm conv → LIF → pool → linear timestep loop (the
//!   exact kernel sequence `SnnNetwork::run_with_state` drives, including
//!   the encoder re-encoding each image) performs **zero** heap allocations
//!   per timestep: the mask words live inside the reused [`SpikePlane`]s and
//!   the word scans iterate them in place.
//! * **Backward** — one warm `backward_sweep` (whose event-tap gather,
//!   column-mask build and pool argmax all word-scan the stored planes)
//!   allocates an amount independent of the timestep count, for both coding
//!   schemes — the same contract `alloc_free_backward` proves, re-checked
//!   here because the word-scan rewrite replaced the kernels under it.
//!
//! This lives in its own integration-test binary because the global
//! allocator is process-wide.

use snn_core::encoding::Encoder;
use snn_core::layers::{Conv2d, Linear, SpikeMaxPool2d};
use snn_core::network::{vgg9, Vgg9Config};
use snn_core::neuron::{LifParams, LifPopulation};
use snn_core::spike::SpikePlane;
use snn_core::tensor::Tensor;
use snn_train::bptt::{Bptt, BpttScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation served to the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_word_scan_forward_timestep_loop_allocates_nothing() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(9);
    // A conv → LIF → pool → linear → LIF stack over a ragged 9×9 map:
    // 2·9·9 = 162 cells (a partial tail word) through the conv, 2·4·4
    // through the pool, 32 into the classifier head.
    let conv = Conv2d::with_kaiming_init(2, 2, 3, 1, 1, &mut rng).unwrap();
    let pool = SpikeMaxPool2d::new(2).unwrap();
    let fc = Linear::with_kaiming_init(32, 4, &mut rng).unwrap();
    let image = Tensor::from_fn(&[2, 9, 9], |i| ((i as f32) * 0.031).sin().abs());

    let mut frames: Vec<SpikePlane> = Vec::new();
    let mut scratch = snn_core::layers::ConvScratch::new();
    let mut current = Tensor::default();
    let mut conv_spikes = SpikePlane::new();
    let mut pooled = SpikePlane::new();
    let mut fc_current = Tensor::default();
    let mut out_spikes = SpikePlane::new();
    let mut lif_conv = LifPopulation::new(2 * 9 * 9, LifParams::paper_default());
    let mut lif_out = LifPopulation::new(4, LifParams::paper_default());

    for (scheme, encoder) in [("direct", Encoder::direct(4)), ("rate", Encoder::rate(4))] {
        let mut sweep = |frames: &mut Vec<SpikePlane>| {
            encoder.encode_planes_into(&image, 5, frames).unwrap();
            lif_conv.reset();
            lif_out.reset();
            for frame in frames.iter() {
                conv.forward_plane_into(frame, &mut scratch, &mut current)
                    .unwrap();
                lif_conv.step_plane(&current, &mut conv_spikes).unwrap();
                pool.forward_plane(&conv_spikes, &mut pooled).unwrap();
                fc.forward_plane_into(&pooled, &mut fc_current).unwrap();
                lif_out.step_plane(&fc_current, &mut out_spikes).unwrap();
            }
        };
        // Warm every buffer (planes, scratch, encoder frames), then demand
        // strict zero for the whole re-encoded, re-run timestep loop.
        sweep(&mut frames);
        let allocs = count_allocs(|| sweep(&mut frames));
        assert_eq!(
            allocs, 0,
            "{scheme}: warm word-scan forward loop allocated {allocs} times"
        );
    }
}

#[test]
fn warm_word_scan_backward_allocations_are_timestep_independent() {
    let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let bptt = Bptt::default();
    let effective = bptt.prepare(&net).unwrap();
    let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.029).cos().abs());
    let mut scratch = BpttScratch::new();

    for scheme in ["direct", "rate"] {
        let mut counts = Vec::new();
        for timesteps in [2_usize, 4, 6] {
            let encoder = if scheme == "direct" {
                Encoder::direct(timesteps)
            } else {
                Encoder::rate(timesteps)
            };
            let sweep = bptt
                .forward_sweep(&net, &effective, &image, &encoder, 1)
                .unwrap();
            bptt.backward_sweep(&net, &effective, &sweep, 2, &mut scratch)
                .unwrap();
            counts.push(count_allocs(|| {
                bptt.backward_sweep(&net, &effective, &sweep, 2, &mut scratch)
                    .unwrap();
            }));
        }
        assert!(
            counts[0] == counts[1] && counts[1] == counts[2],
            "{scheme}: word-scan backward allocations scale with T: {counts:?}"
        );
    }
}
