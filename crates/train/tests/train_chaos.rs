//! Training chaos suite: seeded fault injection over the trainer proves
//! that no injected panic escapes `fit`, every injected fault is reported
//! exactly once as a typed quarantine entry, and the quarantine set is
//! invariant to batch size and thread count.

use snn_core::network::{vgg9, Layer, SnnNetwork, Vgg9Config};
use snn_data::{Dataset, Sample, Split, SyntheticConfig, SyntheticDataset};
use snn_train::trainer::{TrainConfig, Trainer};
use snn_train::{FaultReason, SampleFault, TrainError, TrainFault, TrainFaultPlan};

/// Injected worker panics are expected here; suppress their default stderr
/// backtraces while forwarding every real panic.
fn quiet_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| info.payload().downcast_ref::<&str>().map(|s| s.to_string()));
            if let Some(message) = &message {
                if message.contains("injected fault") {
                    return;
                }
            }
            default(info);
        }));
    });
}

fn tiny_data() -> SyntheticDataset {
    SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 20, 10))
}

fn chaos_config(batch_size: usize, threads: usize) -> TrainConfig {
    let mut cfg = TrainConfig::quick();
    cfg.epochs = 2;
    cfg.max_train_samples = Some(12);
    cfg.batch_size = batch_size;
    cfg.threads = threads;
    cfg.seed = 5;
    cfg.fault_budget = 1000;
    cfg
}

/// The faults the plan injects over this run, in deterministic (epoch,
/// index) order — what the report must contain, each exactly once.
fn expected_faults(
    plan: &TrainFaultPlan,
    epochs: usize,
    limit: usize,
) -> Vec<(usize, usize, TrainFault)> {
    let mut expected = Vec::new();
    for epoch in 0..epochs {
        for index in 0..limit {
            let fault = plan.fault_for(epoch, index);
            if fault != TrainFault::None {
                expected.push((epoch, index, fault));
            }
        }
    }
    expected
}

fn reason_matches(reason: &FaultReason, injected: TrainFault) -> bool {
    match injected {
        TrainFault::Panic => matches!(reason, FaultReason::Panicked { .. }),
        TrainFault::NanGrad => matches!(reason, FaultReason::NonFinite { .. }),
        TrainFault::CorruptSample => matches!(reason, FaultReason::InvalidData { .. }),
        TrainFault::None => false,
    }
}

fn weight_bits(net: &SnnNetwork) -> Vec<u32> {
    net.layers()
        .iter()
        .flat_map(|layer| match layer {
            Layer::Conv { conv, .. } => conv.weight().as_slice().to_vec(),
            Layer::Linear { linear, .. } => linear.weight().as_slice().to_vec(),
            Layer::Pool { .. } => Vec::new(),
        })
        .map(|w| w.to_bits())
        .collect()
}

/// All three fault kinds at once: the run survives, and the quarantine list
/// is exactly the injected set — every fault reported once, with the
/// matching typed reason, excluded by sample index.
#[test]
fn every_injected_fault_is_quarantined_exactly_once() {
    quiet_injected_panics();
    let data = tiny_data();
    let plan = TrainFaultPlan::new(71)
        .with_panic_rate(0.12)
        .with_nan_grad_rate(0.12)
        .with_corrupt_rate(0.12);
    let expected = expected_faults(&plan, 2, 12);
    assert!(
        expected.len() >= 3,
        "plan seed must inject a few faults for the test to mean anything"
    );

    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let mut trainer = Trainer::new(chaos_config(4, 2))
        .unwrap()
        .with_fault_plan(plan);
    let report = trainer.fit(&mut net, &data).unwrap();

    assert!(report.completed);
    assert_eq!(
        report.faults.len(),
        expected.len(),
        "each injected fault must be reported exactly once: {:?}",
        report.faults
    );
    for (fault, (epoch, index, injected)) in report.faults.iter().zip(&expected) {
        assert_eq!((fault.epoch, fault.index), (*epoch, *index));
        assert!(
            reason_matches(&fault.reason, *injected),
            "sample ({epoch}, {index}): injected {injected:?}, reported {:?}",
            fault.reason
        );
    }
    // Surviving samples still trained: epoch stats exist and are finite.
    assert_eq!(report.epoch_losses.len(), 2);
    assert!(report.final_loss().is_finite());
}

/// The quarantine set — and the weights trained on the surviving samples —
/// do not depend on the thread count; the quarantine set is also invariant
/// to the batch size.
#[test]
fn quarantine_set_is_batching_and_thread_invariant() {
    quiet_injected_panics();
    let data = tiny_data();
    let plan = TrainFaultPlan::new(9)
        .with_panic_rate(0.15)
        .with_nan_grad_rate(0.1);

    let mut reference_faults: Option<Vec<SampleFault>> = None;
    // Thread sweep at fixed batch size: faults AND weights must agree.
    let mut reference_bits: Option<Vec<u32>> = None;
    for threads in [1usize, 2, 4] {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let mut trainer = Trainer::new(chaos_config(4, threads))
            .unwrap()
            .with_fault_plan(plan);
        let report = trainer.fit(&mut net, &data).unwrap();
        let bits = weight_bits(&net);
        match (&reference_faults, &reference_bits) {
            (None, _) => {
                reference_faults = Some(report.faults);
                reference_bits = Some(bits);
            }
            (Some(faults), Some(ref_bits)) => {
                assert_eq!(
                    &report.faults, faults,
                    "fault list differs at {threads} threads"
                );
                assert_eq!(&bits, ref_bits, "weights differ at {threads} threads");
            }
            _ => unreachable!(),
        }
    }
    // Batch-size sweep: the fault list must not change (weights legitimately
    // do — different folds).
    for batch_size in [2usize, 3, 6, 12] {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let mut trainer = Trainer::new(chaos_config(batch_size, 2))
            .unwrap()
            .with_fault_plan(plan);
        let report = trainer.fit(&mut net, &data).unwrap();
        assert_eq!(
            report.faults,
            *reference_faults.as_ref().unwrap(),
            "fault list differs at batch size {batch_size}"
        );
    }
}

/// Exceeding the fault budget aborts with the typed error instead of
/// training on a mostly-quarantined stream.
#[test]
fn fault_budget_exhaustion_aborts_typed() {
    quiet_injected_panics();
    let data = tiny_data();
    let plan = TrainFaultPlan::new(3).with_panic_rate(0.5);
    let mut cfg = chaos_config(4, 2);
    cfg.fault_budget = 2;
    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let mut trainer = Trainer::new(cfg).unwrap().with_fault_plan(plan);
    let err = trainer.fit(&mut net, &data).unwrap_err();
    match err {
        TrainError::FaultBudgetExceeded { faults, budget, .. } => {
            assert_eq!(budget, 2);
            assert!(faults > budget);
        }
        other => panic!("expected FaultBudgetExceeded, got {other:?}"),
    }
}

/// With quarantine disabled, a planted NaN gradient poisons its batch and
/// trips the non-finite fail-fast BEFORE the optimizer step — the typed
/// error names the epoch and batch.
#[test]
fn non_finite_fail_fast_aborts_before_the_optimizer_step() {
    quiet_injected_panics();
    let data = tiny_data();
    // Plant exactly one NaN-gradient sample at a known position.
    let plan = TrainFaultPlan::new(29).with_nan_grad_rate(0.08);
    let planted = expected_faults(&plan, 2, 12);
    assert!(!planted.is_empty(), "seed must plant at least one NaN");
    let (first_epoch, first_index, _) = planted[0];

    let mut cfg = chaos_config(4, 2);
    cfg.quarantine = false;
    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let before = weight_bits(&net);
    let mut trainer = Trainer::new(cfg).unwrap().with_fault_plan(plan);
    let err = trainer.fit(&mut net, &data).unwrap_err();
    match err {
        TrainError::NonFinite { epoch, batch, .. } => {
            assert_eq!(epoch, first_epoch);
            assert_eq!(batch, first_index / 4);
        }
        other => panic!("expected NonFinite, got {other:?}"),
    }
    if first_epoch == 0 && first_index / 4 == 0 {
        // The poisoned batch was the first: no update may have been applied.
        assert_eq!(
            weight_bits(&net),
            before,
            "poisoned batch must not reach weights"
        );
    }
}

/// A dataset with a genuinely poisoned sample (NaN pixel): the sample is
/// always quarantined as invalid data — even with result-quarantine off —
/// and training completes on the remaining samples.
#[test]
fn poisoned_dataset_sample_is_quarantined_by_validation() {
    struct Poisoned {
        inner: SyntheticDataset,
        bad_index: usize,
    }
    impl Dataset for Poisoned {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn num_classes(&self) -> usize {
            self.inner.num_classes()
        }
        fn image_shape(&self) -> [usize; 3] {
            self.inner.image_shape()
        }
        fn len(&self, split: Split) -> usize {
            self.inner.len(split)
        }
        fn sample(&self, split: Split, index: usize) -> Sample {
            let mut sample = self.inner.sample(split, index);
            if split == Split::Train && index == self.bad_index {
                sample.image.as_mut_slice()[5] = f32::NAN;
            }
            sample
        }
    }

    let data = Poisoned {
        inner: tiny_data(),
        bad_index: 7,
    };
    let mut cfg = chaos_config(4, 2);
    cfg.quarantine = false; // input validation quarantines regardless
    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let mut trainer = Trainer::new(cfg).unwrap();
    let report = trainer.fit(&mut net, &data).unwrap();
    assert!(report.completed);
    assert_eq!(report.faults.len(), 2, "one quarantine per epoch");
    for (fault, epoch) in report.faults.iter().zip(0..) {
        assert_eq!(fault.epoch, epoch);
        assert_eq!(fault.index, 7);
        assert!(matches!(fault.reason, FaultReason::InvalidData { .. }));
    }
    // Out-of-range labels are caught by the same validation seam.
    let sample = Sample {
        image: snn_core::tensor::Tensor::zeros(&[3, 16, 16]),
        label: 99,
    };
    assert!(sample.validate(10).is_err());
}
