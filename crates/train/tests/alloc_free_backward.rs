//! Proves the backward pass's allocation contract: once a [`BpttScratch`] is
//! warm, the scratch-backed backward performs **zero heap allocations per
//! timestep**. A counting global allocator measures the allocations of one
//! `backward_sweep` call against cached forwards with different timestep
//! counts — all remaining allocations are per-sample constants (the returned
//! gradients, loss buffers), so the counts must be identical across `T`.
//!
//! This lives in its own integration-test binary because the global
//! allocator is process-wide; the single test keeps the counter race-free.

use snn_core::encoding::Encoder;
use snn_core::network::{vgg9, Vgg9Config};
use snn_core::tensor::Tensor;
use snn_train::bptt::{Bptt, BpttScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation served to the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_backward_allocation_count_is_independent_of_timesteps() {
    let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let bptt = Bptt::default();
    let effective = bptt.prepare(&net).unwrap();
    let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.023).sin().abs());
    let mut scratch = BpttScratch::new();

    // Both coding schemes drive the backward through different kernel mixes:
    // direct coding replays an analog input frame (cached-lowering weight
    // gradient, dense gradient frames), rate coding feeds binary stochastic
    // frames (event-tap weight gradient). Both exercise the fused
    // input-gradient kernel (`conv2d_input_grad_into`) — including its
    // active-column detection, packing and scatter scratch — which must also
    // stay allocation-free once warm.
    for scheme in ["direct", "rate"] {
        let mut counts = Vec::new();
        for timesteps in [2_usize, 4, 6] {
            let encoder = if scheme == "direct" {
                Encoder::direct(timesteps)
            } else {
                Encoder::rate(timesteps)
            };
            let sweep = bptt
                .forward_sweep(&net, &effective, &image, &encoder, 0)
                .unwrap();
            // First call warms the scratch for this timestep count; the
            // second, measured call must only pay the per-sample constants.
            bptt.backward_sweep(&net, &effective, &sweep, 3, &mut scratch)
                .unwrap();
            let count = count_allocs(|| {
                bptt.backward_sweep(&net, &effective, &sweep, 3, &mut scratch)
                    .unwrap();
            });
            counts.push(count);
            // Repeatability at a fixed T: a third call costs exactly the same.
            let again = count_allocs(|| {
                bptt.backward_sweep(&net, &effective, &sweep, 3, &mut scratch)
                    .unwrap();
            });
            assert_eq!(
                count, again,
                "warm backward alloc count unstable at {scheme} T={timesteps}"
            );
        }
        assert_eq!(
            counts[0], counts[1],
            "{scheme} backward allocations grow with timesteps: {counts:?}"
        );
        assert_eq!(
            counts[1], counts[2],
            "{scheme} backward allocations grow with timesteps: {counts:?}"
        );
    }
}
