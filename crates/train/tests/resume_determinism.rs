//! Resume determinism: a run interrupted at ANY batch boundary and resumed
//! from its checkpoint produces final weights bitwise identical to the
//! uninterrupted run — at every thread count.
//!
//! The harness uses [`StopHandle::stop_after_steps`], which stops the run
//! deterministically once the total optimizer-step counter (which survives
//! resume) reaches the requested value, so every boundary of a 2-epoch run
//! is exercised exactly.

use snn_core::network::{vgg9, Layer, SnnNetwork, Vgg9Config};
use snn_data::{SyntheticConfig, SyntheticDataset};
use snn_train::trainer::{StopHandle, TrainConfig, Trainer};
use snn_train::TrainCheckpoint;
use std::path::PathBuf;

fn tiny_data() -> SyntheticDataset {
    SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 20, 10))
}

fn config(threads: usize, checkpoint_path: Option<PathBuf>) -> TrainConfig {
    let mut cfg = TrainConfig::quick();
    cfg.epochs = 2;
    cfg.max_train_samples = Some(6);
    cfg.batch_size = 2;
    cfg.threads = threads;
    cfg.seed = 11;
    cfg.checkpoint_path = checkpoint_path;
    cfg
}

fn weight_bits(net: &SnnNetwork) -> Vec<Vec<u32>> {
    net.layers()
        .iter()
        .filter_map(|layer| match layer {
            Layer::Conv { conv, .. } => Some(
                conv.weight()
                    .as_slice()
                    .iter()
                    .map(|w| w.to_bits())
                    .collect(),
            ),
            Layer::Linear { linear, .. } => Some(
                linear
                    .weight()
                    .as_slice()
                    .iter()
                    .map(|w| w.to_bits())
                    .collect(),
            ),
            Layer::Pool { .. } => None,
        })
        .collect()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snn_resume_determinism_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Interrupt at every one of the run's 6 batch boundaries (2 epochs × 3
/// batches), resume, and require bitwise-equal final weights and identical
/// epoch statistics — at 1 and 4 worker threads.
#[test]
fn resume_is_bitwise_identical_at_every_batch_boundary() {
    let data = tiny_data();
    for threads in [1usize, 4] {
        // Uninterrupted reference.
        let mut reference_net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        let mut trainer = Trainer::new(config(threads, None)).unwrap();
        let reference_report = trainer.fit(&mut reference_net, &data).unwrap();
        let reference_bits = weight_bits(&reference_net);
        assert!(reference_report.completed);

        let total_steps = 6u64; // 2 epochs x ceil(6/2) batches
        for boundary in 0..total_steps {
            let path = temp_path(&format!("boundary_{threads}_{boundary}.snntrain"));
            let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
            let stop = StopHandle::new();
            stop.stop_after_steps(boundary);
            let mut trainer = Trainer::new(config(threads, Some(path.clone()))).unwrap();
            let partial = trainer.fit_with_stop(&mut net, &data, &stop).unwrap();
            assert!(
                !partial.completed,
                "threads {threads}: run stopped at step {boundary} must be partial"
            );
            assert_eq!(partial.checkpoint.as_deref(), Some(path.as_path()));

            // Resume into a FRESH network: everything must come from the
            // checkpoint, nothing from the interrupted process.
            let checkpoint = TrainCheckpoint::load(&path).unwrap();
            assert_eq!(checkpoint.cursor.steps, boundary);
            let mut resumed_net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
            let resumed = Trainer::resume(checkpoint, &mut resumed_net, &data).unwrap();

            assert!(resumed.completed);
            assert_eq!(
                resumed.epoch_losses, reference_report.epoch_losses,
                "threads {threads}, boundary {boundary}: epoch losses diverged"
            );
            assert_eq!(resumed.epoch_accuracies, reference_report.epoch_accuracies);
            assert_eq!(
                resumed.epoch_mean_spikes,
                reference_report.epoch_mean_spikes
            );
            assert_eq!(
                weight_bits(&resumed_net),
                reference_bits,
                "threads {threads}, boundary {boundary}: weights diverged after resume"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// A resumed run can itself be interrupted and resumed again (double
/// interruption), still landing bitwise on the reference.
#[test]
fn double_interruption_still_matches_reference() {
    let data = tiny_data();
    let mut reference_net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let mut trainer = Trainer::new(config(2, None)).unwrap();
    trainer.fit(&mut reference_net, &data).unwrap();
    let reference_bits = weight_bits(&reference_net);

    let path = temp_path("double.snntrain");
    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let stop = StopHandle::new();
    stop.stop_after_steps(2);
    let mut trainer = Trainer::new(config(2, Some(path.clone()))).unwrap();
    trainer.fit_with_stop(&mut net, &data, &stop).unwrap();

    let stop = StopHandle::new();
    stop.stop_after_steps(4);
    let checkpoint = TrainCheckpoint::load(&path).unwrap();
    let mut net2 = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let mid = Trainer::resume_with_stop(checkpoint, &mut net2, &data, &stop).unwrap();
    assert!(!mid.completed);

    let checkpoint = TrainCheckpoint::load(&path).unwrap();
    assert_eq!(checkpoint.cursor.steps, 4);
    let mut net3 = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let done = Trainer::resume(checkpoint, &mut net3, &data).unwrap();
    assert!(done.completed);
    assert_eq!(weight_bits(&net3), reference_bits);
    std::fs::remove_file(&path).ok();
}

/// Resume validation refuses the wrong dataset or a mismatched network.
#[test]
fn resume_rejects_incompatible_targets() {
    let data = tiny_data();
    let path = temp_path("incompatible.snntrain");
    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let stop = StopHandle::new();
    stop.stop_after_steps(1);
    let mut trainer = Trainer::new(config(1, Some(path.clone()))).unwrap();
    trainer.fit_with_stop(&mut net, &data, &stop).unwrap();

    let checkpoint = TrainCheckpoint::load(&path).unwrap();
    let other_data =
        SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 8, 4));
    let mut fresh = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let err = Trainer::resume(checkpoint, &mut fresh, &other_data).unwrap_err();
    assert!(
        matches!(err, snn_train::TrainError::IncompatibleResume { .. }),
        "expected IncompatibleResume, got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}
