//! Hard-kill crash safety: a training process SIGKILL'd mid-run leaves a
//! loadable checkpoint behind (atomic temp-file + rename + CRC trailer), and
//! resuming from it reaches the same weights — bitwise — as a run that was
//! never interrupted.
//!
//! The harness re-invokes this test binary as a child process running the
//! `#[ignore]`d `child_training_run` test (an effectively endless training
//! loop with `checkpoint_every = 1`), waits for the first checkpoints to
//! appear, and kills the child with no warning whatsoever — possibly in the
//! middle of a checkpoint write.

use snn_core::network::{vgg9, Layer, SnnNetwork, Vgg9Config};
use snn_data::{SyntheticConfig, SyntheticDataset};
use snn_train::trainer::{StopHandle, TrainConfig, Trainer};
use snn_train::TrainCheckpoint;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const PATH_ENV: &str = "SNN_TRAIN_KILL_PATH";

fn data() -> SyntheticDataset {
    SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 20, 10))
}

/// The child's configuration: effectively endless (1000 epochs), saving a
/// checkpoint after every optimizer step.
fn child_config(checkpoint_path: Option<PathBuf>) -> TrainConfig {
    let mut cfg = TrainConfig::quick();
    cfg.epochs = 1000;
    cfg.max_train_samples = Some(4);
    cfg.batch_size = 2;
    cfg.threads = 2;
    cfg.seed = 23;
    cfg.checkpoint_every = usize::from(checkpoint_path.is_some());
    cfg.checkpoint_path = checkpoint_path;
    cfg
}

fn weight_bits(net: &SnnNetwork) -> Vec<u32> {
    net.layers()
        .iter()
        .flat_map(|layer| match layer {
            Layer::Conv { conv, .. } => conv.weight().as_slice().to_vec(),
            Layer::Linear { linear, .. } => linear.weight().as_slice().to_vec(),
            Layer::Pool { .. } => Vec::new(),
        })
        .map(|w| w.to_bits())
        .collect()
}

/// Child body: train forever, checkpointing every step. Only runs when the
/// parent set the path env var; as a plain `--ignored` test it no-ops.
#[test]
#[ignore = "child process body for kill_and_resume_matches_uninterrupted_run"]
fn child_training_run() {
    let Ok(path) = std::env::var(PATH_ENV) else {
        return;
    };
    let data = data();
    let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let mut trainer = Trainer::new(child_config(Some(PathBuf::from(path)))).unwrap();
    trainer.fit(&mut net, &data).unwrap();
}

#[test]
fn kill_and_resume_matches_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("snn_kill_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("killed.snntrain");

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["--ignored", "--exact", "child_training_run", "--nocapture"])
        .env(PATH_ENV, &path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child trainer");

    // Wait until the child has durably checkpointed at least 2 optimizer
    // steps, then SIGKILL it — with no coordination, the kill can land
    // mid-checkpoint-write, which is exactly what the atomic save must
    // survive.
    let deadline = Instant::now() + Duration::from_secs(120);
    let observed_steps = loop {
        if let Ok(checkpoint) = TrainCheckpoint::load(&path) {
            if checkpoint.cursor.steps >= 2 {
                break checkpoint.cursor.steps;
            }
        }
        assert!(
            Instant::now() < deadline,
            "child produced no usable checkpoint within the deadline"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    child.kill().expect("SIGKILL child");
    let status = child.wait().expect("reap child");
    assert!(!status.success(), "child was killed, not exited");

    // The file left behind must load despite the uncoordinated kill.
    let checkpoint = TrainCheckpoint::load(&path)
        .expect("checkpoint must be loadable after SIGKILL (atomic save)");
    let killed_at = checkpoint.cursor.steps;
    assert!(killed_at >= observed_steps);

    // Resume for two more optimizer steps, then compare bitwise against an
    // uninterrupted run stopped at the same step count.
    let target = killed_at + 2;
    let data = data();
    let stop = StopHandle::new();
    stop.stop_after_steps(target);
    let mut resumed_net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let resumed = Trainer::resume_with_stop(checkpoint, &mut resumed_net, &data, &stop).unwrap();
    assert!(!resumed.completed);

    let stop = StopHandle::new();
    stop.stop_after_steps(target);
    let mut reference_net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let mut trainer = Trainer::new(child_config(None)).unwrap();
    let reference = trainer
        .fit_with_stop(&mut reference_net, &data, &stop)
        .unwrap();
    assert!(!reference.completed);

    assert_eq!(
        weight_bits(&resumed_net),
        weight_bits(&reference_net),
        "weights after SIGKILL + resume diverge from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}
