//! Simple image augmentations.
//!
//! The paper's training recipe (snnTorch on CIFAR/SVHN) uses standard light
//! augmentation; this module provides the equivalents used by the trainer on
//! the synthetic datasets: horizontal flip, small shifts with zero padding and
//! additive pixel noise. All operations are deterministic given an `Rng`.

use rand::Rng;
use snn_core::tensor::Tensor;

/// Horizontally flips a `[C, H, W]` image.
///
/// # Panics
///
/// Panics if the tensor is not 3-dimensional.
pub fn horizontal_flip(image: &Tensor) -> Tensor {
    let shape = image.shape();
    assert_eq!(shape.len(), 3, "horizontal_flip expects a [C, H, W] tensor");
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let src = image.as_slice();
    let mut out = vec![0.0_f32; src.len()];
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                out[ci * h * w + y * w + x] = src[ci * h * w + y * w + (w - 1 - x)];
            }
        }
    }
    Tensor::from_vec(out, shape).expect("shape preserved")
}

/// Shifts a `[C, H, W]` image by `(dy, dx)` pixels, filling vacated pixels
/// with zeros.
///
/// # Panics
///
/// Panics if the tensor is not 3-dimensional.
pub fn shift(image: &Tensor, dy: isize, dx: isize) -> Tensor {
    let shape = image.shape();
    assert_eq!(shape.len(), 3, "shift expects a [C, H, W] tensor");
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let src = image.as_slice();
    let mut out = vec![0.0_f32; src.len()];
    for ci in 0..c {
        for y in 0..h {
            let sy = y as isize - dy;
            if sy < 0 || sy >= h as isize {
                continue;
            }
            for x in 0..w {
                let sx = x as isize - dx;
                if sx < 0 || sx >= w as isize {
                    continue;
                }
                out[ci * h * w + y * w + x] = src[ci * h * w + sy as usize * w + sx as usize];
            }
        }
    }
    Tensor::from_vec(out, shape).expect("shape preserved")
}

/// Adds uniform noise in `[-amplitude, amplitude]` and clamps to `[0, 1]`.
pub fn add_noise(image: &Tensor, amplitude: f32, rng: &mut impl Rng) -> Tensor {
    let data: Vec<f32> = image
        .as_slice()
        .iter()
        .map(|&v| (v + rng.gen_range(-amplitude..=amplitude)).clamp(0.0, 1.0))
        .collect();
    Tensor::from_vec(data, image.shape()).expect("shape preserved")
}

/// Applies a random combination of flip / shift / noise, the default light
/// augmentation used when training on the synthetic datasets.
pub fn random_augment(image: &Tensor, rng: &mut impl Rng) -> Tensor {
    let mut out = if rng.gen_bool(0.5) {
        horizontal_flip(image)
    } else {
        image.clone()
    };
    let dy = rng.gen_range(-2_isize..=2);
    let dx = rng.gen_range(-2_isize..=2);
    if dy != 0 || dx != 0 {
        out = shift(&out, dy, dx);
    }
    add_noise(&out, 0.02, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn image() -> Tensor {
        Tensor::from_fn(&[2, 4, 4], |i| (i as f32) / 32.0)
    }

    #[test]
    fn double_flip_is_identity() {
        let img = image();
        assert_eq!(horizontal_flip(&horizontal_flip(&img)), img);
    }

    #[test]
    fn flip_moves_left_column_to_right() {
        let img = image();
        let flipped = horizontal_flip(&img);
        assert_eq!(
            flipped.get(&[0, 0, 3]).unwrap(),
            img.get(&[0, 0, 0]).unwrap()
        );
        assert_eq!(
            flipped.get(&[1, 2, 0]).unwrap(),
            img.get(&[1, 2, 3]).unwrap()
        );
    }

    #[test]
    fn zero_shift_is_identity() {
        let img = image();
        assert_eq!(shift(&img, 0, 0), img);
    }

    #[test]
    fn shift_fills_with_zeros() {
        let img = Tensor::ones(&[1, 3, 3]);
        let shifted = shift(&img, 1, 0);
        // The first row is vacated.
        assert_eq!(shifted.get(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(shifted.get(&[0, 1, 1]).unwrap(), 1.0);
        assert_eq!(shifted.count_nonzero(), 6);
    }

    #[test]
    fn noise_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = add_noise(&Tensor::full(&[1, 8, 8], 0.98), 0.5, &mut rng);
        assert!(noisy.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn random_augment_preserves_shape_and_is_seed_deterministic() {
        let img = image();
        let a = random_augment(&img, &mut StdRng::seed_from_u64(3));
        let b = random_augment(&img, &mut StdRng::seed_from_u64(3));
        let c = random_augment(&img, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.shape(), img.shape());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        /// Shifting never creates pixel mass out of nothing: the sum of the
        /// shifted image is bounded by the original sum.
        #[test]
        fn shift_never_increases_mass(dy in -3_isize..=3, dx in -3_isize..=3) {
            let img = image();
            let shifted = shift(&img, dy, dx);
            prop_assert!(shifted.sum() <= img.sum() + 1e-5);
        }

        /// Flipping preserves the pixel sum exactly.
        #[test]
        fn flip_preserves_mass(seed in 0_u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let img = Tensor::from_fn(&[3, 6, 6], |_| rng.gen_range(0.0..1.0));
            let flipped = horizontal_flip(&img);
            prop_assert!((flipped.sum() - img.sum()).abs() < 1e-4);
        }
    }
}
