//! Class-conditional synthetic image generators.
//!
//! Each class owns a smooth random prototype image built from a small number
//! of 2-D Gaussian blobs and sinusoidal gratings. A sample of that class is
//! the prototype, randomly shifted by a couple of pixels, mixed with
//! pixel-level noise and re-clamped to `[0, 1]`. The *difficulty* knob is the
//! noise level: a higher noise-to-prototype ratio makes classes harder to
//! separate, which is how the SVHN < CIFAR-10 < CIFAR-100 accuracy ordering
//! of the paper is reproduced without the real datasets.

use crate::dataset::{Dataset, Sample, Split};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_core::tensor::Tensor;

/// Configuration of a [`SyntheticDataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Dataset name.
    pub name: String,
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Square image size.
    pub image_size: usize,
    /// Number of training samples.
    pub train_size: usize,
    /// Number of test samples.
    pub test_size: usize,
    /// Standard deviation of the additive pixel noise (difficulty knob).
    pub noise: f32,
    /// Maximum absolute shift (in pixels) applied to the prototype.
    pub max_shift: usize,
    /// RNG seed; every sample is derived deterministically from it.
    pub seed: u64,
}

impl SyntheticConfig {
    /// SVHN-like: 10 classes, 3×32×32, low noise (easiest).
    pub fn svhn_like() -> Self {
        SyntheticConfig {
            name: "svhn-like".to_string(),
            num_classes: 10,
            channels: 3,
            image_size: 32,
            train_size: 200,
            test_size: 100,
            noise: 0.10,
            max_shift: 2,
            seed: 0x5411,
        }
    }

    /// CIFAR-10-like: 10 classes, 3×32×32, medium noise.
    pub fn cifar10_like() -> Self {
        SyntheticConfig {
            name: "cifar10-like".to_string(),
            num_classes: 10,
            channels: 3,
            image_size: 32,
            train_size: 200,
            test_size: 100,
            noise: 0.18,
            max_shift: 3,
            seed: 0xC1FA,
        }
    }

    /// CIFAR-100-like: 100 classes, 3×32×32, high noise (hardest).
    pub fn cifar100_like() -> Self {
        SyntheticConfig {
            name: "cifar100-like".to_string(),
            num_classes: 100,
            channels: 3,
            image_size: 32,
            train_size: 400,
            test_size: 200,
            noise: 0.26,
            max_shift: 3,
            seed: 0xC100,
        }
    }

    /// Scaled-down variant of any configuration for fast tests/training:
    /// 16×16 images and the given sample counts.
    pub fn scaled_down(mut self, image_size: usize, train: usize, test: usize) -> Self {
        self.image_size = image_size;
        self.train_size = train;
        self.test_size = test;
        self
    }
}

/// A deterministic, in-memory synthetic dataset.
///
/// # Example
///
/// ```
/// use snn_data::{Dataset, Split, SyntheticConfig, SyntheticDataset};
///
/// let data = SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 20, 10));
/// assert_eq!(data.len(Split::Train), 20);
/// assert_eq!(data.num_classes(), 10);
/// let s = data.sample(Split::Train, 0);
/// assert_eq!(s.image.shape(), &[3, 16, 16]);
/// assert!(s.label < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: SyntheticConfig,
    prototypes: Vec<Tensor>,
    train: Vec<Sample>,
    test: Vec<Sample>,
}

impl SyntheticDataset {
    /// Generates the dataset described by `config`. Generation is
    /// deterministic in `config.seed`.
    pub fn generate(config: SyntheticConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let prototypes: Vec<Tensor> = (0..config.num_classes)
            .map(|_| Self::prototype(&config, &mut rng))
            .collect();
        let train = Self::split(&config, &prototypes, config.train_size, &mut rng);
        let test = Self::split(&config, &prototypes, config.test_size, &mut rng);
        SyntheticDataset {
            config,
            prototypes,
            train,
            test,
        }
    }

    /// The generation configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// The class prototype images.
    pub fn prototypes(&self) -> &[Tensor] {
        &self.prototypes
    }

    fn prototype(config: &SyntheticConfig, rng: &mut StdRng) -> Tensor {
        let (c, s) = (config.channels, config.image_size);
        // A prototype is a sum of a few Gaussian blobs plus a low-frequency
        // grating, per channel, normalised to [0, 1].
        let blobs: Vec<(f32, f32, f32, f32)> = (0..4)
            .map(|_| {
                (
                    rng.gen_range(0.0..s as f32),
                    rng.gen_range(0.0..s as f32),
                    rng.gen_range(s as f32 * 0.08..s as f32 * 0.3),
                    rng.gen_range(0.4..1.0),
                )
            })
            .collect();
        let freq = rng.gen_range(0.5..2.0) * std::f32::consts::PI / s as f32;
        let phase = rng.gen_range(0.0..std::f32::consts::TAU);
        let angle = rng.gen_range(0.0..std::f32::consts::PI);
        let (dx, dy) = (angle.cos(), angle.sin());
        let channel_gain: Vec<f32> = (0..c).map(|_| rng.gen_range(0.5..1.0)).collect();

        let mut data = vec![0.0_f32; c * s * s];
        for ci in 0..c {
            for y in 0..s {
                for x in 0..s {
                    let mut v = 0.0;
                    for &(bx, by, sigma, amp) in &blobs {
                        let d2 = (x as f32 - bx).powi(2) + (y as f32 - by).powi(2);
                        v += amp * (-d2 / (2.0 * sigma * sigma)).exp();
                    }
                    v += 0.25 * ((x as f32 * dx + y as f32 * dy) * freq + phase).sin() + 0.25;
                    data[ci * s * s + y * s + x] = (v * channel_gain[ci]).clamp(0.0, 1.0);
                }
            }
        }
        Tensor::from_vec(data, &[c, s, s]).expect("prototype shape is consistent")
    }

    fn split(
        config: &SyntheticConfig,
        prototypes: &[Tensor],
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<Sample> {
        (0..count)
            .map(|i| {
                let label = i % config.num_classes;
                let image = Self::render(config, &prototypes[label], rng);
                Sample { image, label }
            })
            .collect()
    }

    fn render(config: &SyntheticConfig, prototype: &Tensor, rng: &mut StdRng) -> Tensor {
        let (c, s) = (config.channels, config.image_size);
        let shift = config.max_shift as isize;
        let dy = rng.gen_range(-shift..=shift);
        let dx = rng.gen_range(-shift..=shift);
        let proto = prototype.as_slice();
        let mut data = vec![0.0_f32; c * s * s];
        for ci in 0..c {
            for y in 0..s {
                for x in 0..s {
                    let sy = y as isize + dy;
                    let sx = x as isize + dx;
                    let base = if (0..s as isize).contains(&sy) && (0..s as isize).contains(&sx) {
                        proto[ci * s * s + sy as usize * s + sx as usize]
                    } else {
                        0.0
                    };
                    // Box-Muller-free cheap noise: average of two uniforms,
                    // centred on zero, scaled by the difficulty knob.
                    let noise = (rng.gen::<f32>() + rng.gen::<f32>() - 1.0) * config.noise;
                    data[ci * s * s + y * s + x] = (base + noise).clamp(0.0, 1.0);
                }
            }
        }
        Tensor::from_vec(data, &[c, s, s]).expect("sample shape is consistent")
    }
}

impl Dataset for SyntheticDataset {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn image_shape(&self) -> [usize; 3] {
        [
            self.config.channels,
            self.config.image_size,
            self.config.image_size,
        ]
    }

    fn len(&self, split: Split) -> usize {
        match split {
            Split::Train => self.train.len(),
            Split::Test => self.test.len(),
        }
    }

    fn sample(&self, split: Split, index: usize) -> Sample {
        match split {
            Split::Train => self.train[index].clone(),
            Split::Test => self.test[index].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny(config: SyntheticConfig) -> SyntheticDataset {
        SyntheticDataset::generate(config.scaled_down(16, 20, 10))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny(SyntheticConfig::cifar10_like());
        let b = tiny(SyntheticConfig::cifar10_like());
        for i in 0..a.len(Split::Train) {
            assert_eq!(a.sample(Split::Train, i), b.sample(Split::Train, i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny(SyntheticConfig::cifar10_like());
        let mut cfg = SyntheticConfig::cifar10_like();
        cfg.seed += 1;
        let b = tiny(cfg);
        assert_ne!(a.sample(Split::Train, 0), b.sample(Split::Train, 0));
    }

    #[test]
    fn pixels_stay_in_unit_interval() {
        let d = tiny(SyntheticConfig::cifar100_like());
        for split in [Split::Train, Split::Test] {
            for i in 0..d.len(split) {
                let s = d.sample(split, i);
                assert!(s.image.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn labels_cover_all_classes_in_round_robin() {
        let d = tiny(SyntheticConfig::cifar10_like());
        let labels: Vec<usize> = (0..d.len(Split::Train))
            .map(|i| d.sample(Split::Train, i).label)
            .collect();
        for class in 0..10 {
            assert!(labels.contains(&class), "class {class} missing");
        }
        assert!(labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn dataset_shapes_match_config() {
        let d = SyntheticDataset::generate(SyntheticConfig::svhn_like().scaled_down(32, 4, 2));
        assert_eq!(d.image_shape(), [3, 32, 32]);
        assert_eq!(d.sample(Split::Test, 0).image.shape(), &[3, 32, 32]);
        assert_eq!(d.name(), "svhn-like");
    }

    #[test]
    fn paper_dataset_presets_have_expected_class_counts() {
        assert_eq!(SyntheticConfig::svhn_like().num_classes, 10);
        assert_eq!(SyntheticConfig::cifar10_like().num_classes, 10);
        assert_eq!(SyntheticConfig::cifar100_like().num_classes, 100);
        // Difficulty ordering: SVHN easiest, CIFAR-100 hardest.
        assert!(SyntheticConfig::svhn_like().noise < SyntheticConfig::cifar10_like().noise);
        assert!(SyntheticConfig::cifar10_like().noise < SyntheticConfig::cifar100_like().noise);
    }

    #[test]
    fn same_class_samples_are_more_similar_than_cross_class() {
        // The class structure must be learnable: intra-class distance should
        // be smaller than inter-class distance on average.
        let d = tiny(SyntheticConfig::svhn_like());
        let a0 = d.sample(Split::Train, 0); // class 0
        let a1 = d.sample(Split::Train, 10); // class 0 again (round-robin of 10)
        let b0 = d.sample(Split::Train, 1); // class 1
        let intra = (&a0.image - &a1.image).norm();
        let inter = (&a0.image - &b0.image).norm();
        assert_eq!(a0.label, a1.label);
        assert_ne!(a0.label, b0.label);
        assert!(
            intra < inter,
            "intra-class distance {intra} should be below inter-class {inter}"
        );
    }

    proptest! {
        /// Every generated sample has finite pixels and a valid label.
        #[test]
        fn samples_are_well_formed(seed in 0_u64..1000) {
            let mut cfg = SyntheticConfig::cifar10_like().scaled_down(16, 8, 4);
            cfg.seed = seed;
            let d = SyntheticDataset::generate(cfg);
            for i in 0..d.len(Split::Train) {
                let s = d.sample(Split::Train, i);
                prop_assert!(s.label < d.num_classes());
                prop_assert!(s.image.is_finite());
            }
        }
    }
}
