//! # snn-data
//!
//! Synthetic, class-conditional image datasets standing in for the SVHN,
//! CIFAR-10 and CIFAR-100 datasets the paper evaluates on.
//!
//! The real datasets are not available in this environment, and the paper's
//! hardware results depend on the *activation statistics* of the trained
//! network (spike counts per layer) rather than on the semantic content of
//! the images. The generators here therefore produce images that are
//!
//! * the right shape (3 × 32 × 32, or a scaled-down variant for fast tests),
//! * class-structured (each class has a smooth random prototype; samples are
//!   noisy, shifted renditions of their prototype) so that a network can
//!   actually learn to separate them, and
//! * ordered in difficulty like the real datasets (SVHN easiest, CIFAR-100
//!   hardest) via the noise level and class count.
//!
//! See `DESIGN.md` §1 for the substitution rationale.

pub mod augment;
pub mod dataset;
pub mod synthetic;

pub use dataset::{Dataset, Sample, Split};
pub use synthetic::{SyntheticConfig, SyntheticDataset};
