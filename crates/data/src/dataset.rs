//! Dataset abstractions shared by the trainer and the experiment harnesses.

use snn_core::error::SnnError;
use snn_core::tensor::Tensor;

/// One labelled image.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The image as a `[C, H, W]` tensor with values in `[0, 1]`.
    pub image: Tensor,
    /// The class label in `0..num_classes`.
    pub label: usize,
}

impl Sample {
    /// Validates the sample before it reaches compute: every pixel must be
    /// finite and the label must be in `0..num_classes`. The trainer calls
    /// this per sample and quarantines (rather than trains on) anything that
    /// fails — a NaN pixel would silently poison the whole batch gradient.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::NumericalError`] for a non-finite pixel and
    /// [`SnnError::InvalidConfig`] for an out-of-range label.
    pub fn validate(&self, num_classes: usize) -> Result<(), SnnError> {
        if let Some(position) = self.image.as_slice().iter().position(|v| !v.is_finite()) {
            return Err(SnnError::numerical(format!(
                "sample image has a non-finite pixel at flat index {position}"
            )));
        }
        if self.label >= num_classes {
            return Err(SnnError::config(
                "label",
                format!(
                    "label {} is out of range for {num_classes} classes",
                    self.label
                ),
            ));
        }
        Ok(())
    }
}

/// Which split of a dataset to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training split.
    Train,
    /// Held-out test split.
    Test,
}

/// A supervised image-classification dataset.
///
/// The trait is object-safe so harnesses can hold `Box<dyn Dataset>` when
/// sweeping over the three evaluation datasets.
pub trait Dataset {
    /// Human-readable dataset name (e.g. `"cifar10-like"`).
    fn name(&self) -> &str;

    /// Number of classes.
    fn num_classes(&self) -> usize;

    /// Image shape `[C, H, W]`.
    fn image_shape(&self) -> [usize; 3];

    /// Number of samples in the given split.
    fn len(&self, split: Split) -> usize;

    /// Returns `true` if the split holds no samples.
    fn is_empty(&self, split: Split) -> bool {
        self.len(split) == 0
    }

    /// Fetches one sample by index.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `index >= len(split)`.
    fn sample(&self, split: Split, index: usize) -> Sample;

    /// Convenience: all samples of a split, materialised.
    fn samples(&self, split: Split) -> Vec<Sample> {
        (0..self.len(split))
            .map(|i| self.sample(split, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;

    impl Dataset for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn num_classes(&self) -> usize {
            2
        }
        fn image_shape(&self) -> [usize; 3] {
            [1, 2, 2]
        }
        fn len(&self, split: Split) -> usize {
            match split {
                Split::Train => 3,
                Split::Test => 1,
            }
        }
        fn sample(&self, _split: Split, index: usize) -> Sample {
            Sample {
                image: Tensor::full(&[1, 2, 2], index as f32),
                label: index % 2,
            }
        }
    }

    #[test]
    fn default_methods_work() {
        let d = Dummy;
        assert!(!d.is_empty(Split::Train));
        assert_eq!(d.samples(Split::Train).len(), 3);
        assert_eq!(d.samples(Split::Test).len(), 1);
        assert_eq!(d.samples(Split::Train)[2].label, 0);
    }

    #[test]
    fn trait_is_object_safe() {
        let d: Box<dyn Dataset> = Box::new(Dummy);
        assert_eq!(d.name(), "dummy");
        assert_eq!(d.num_classes(), 2);
    }
}
