//! Open-loop load generator for the `snn-serve` dynamic-batching core.
//!
//! Unlike the criterion benches, serving performance is a function of the
//! *offered load*, so this harness drives `ServeCore<Engine>` with requests
//! submitted on a fixed schedule (open loop: the generator never waits for
//! responses, exactly like independent clients) and reports, per arm:
//!
//! * sustained throughput (completed requests / wall time, including drain),
//! * shed count (`Overloaded` rejections at the queue's high-water mark),
//! * end-to-end p50/p99 latency and the mean coalesced batch size, straight
//!   from `ServeCore::stats`.
//!
//! Arms: offered loads × batching configs, always including the
//! `max_batch = 1` baseline so the benefit of coalescing (the engine's
//! worker threads fan a coalesced batch out; a batch of one cannot be
//! parallelised) is measured rather than assumed. Full runs repeat each arm
//! three times and report medians; `--test` runs one short pass per arm as a
//! CI smoke.
//!
//! Run with: `cargo bench --bench serve_load`
//! Machine-readable output: `BENCH_JSON=out.json cargo bench --bench
//! serve_load` appends one JSON line per arm (see `BENCH_serve.json` for the
//! checked-in history).

use snn::core::encoding::Encoder;
use snn::core::network::{vgg9, Vgg9Config};
use snn::core::tensor::Tensor;
use snn::serve::{InferenceRequest, ServeConfig, ServeCore, ServeError};
use snn::{Engine, Precision};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Worker threads the engine fans a coalesced batch out over. Fixed (not
/// `SNN_THREADS`) so arms are comparable across environments.
const ENGINE_THREADS: usize = 4;

struct Arm {
    config_label: &'static str,
    max_batch: usize,
    offered_rps: u64,
}

#[derive(Debug, Clone)]
struct ArmResult {
    completed_rps: f64,
    shed: u64,
    p50_us: u64,
    p99_us: u64,
    mean_batch: f64,
}

fn build_engine() -> Engine {
    Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).expect("vgg9 builds"))
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("serve-bench", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .threads(ENGINE_THREADS)
        .build()
        .expect("engine builds")
}

fn test_image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], move |p| {
        (((p + 31 * i) as f32) * 0.017).sin().abs()
    })
}

/// Sleeps (coarsely) then spins (finely) until `deadline`; open-loop pacing
/// needs sub-millisecond cadence that `thread::sleep` alone cannot hold.
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > Duration::from_millis(1) {
            std::thread::sleep(left - Duration::from_millis(1));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Drives one arm: open-loop submission for `duration`, then a wait on the
/// last accepted request so the drain is inside the measured wall time (the
/// queue is FIFO — once the last accepted request completes, all do).
fn run_arm(engine: &Engine, arm: &Arm, duration: Duration) -> ArmResult {
    let config = ServeConfig {
        max_batch: arm.max_batch,
        max_delay: Duration::from_millis(1),
        queue_capacity: 256,
        ..ServeConfig::default()
    };
    let core = ServeCore::start(engine.clone(), config).expect("core starts");
    let interval = Duration::from_nanos(1_000_000_000 / arm.offered_rps.max(1));
    let images: Vec<Tensor> = (0..16).map(test_image).collect();

    let started = Instant::now();
    let mut next = started;
    let mut submitted = 0u64;
    let mut shed = 0u64;
    let mut last_handle = None;
    while started.elapsed() < duration {
        pace_until(next);
        next += interval;
        let image = images[(submitted % images.len() as u64) as usize].clone();
        match core.submit(InferenceRequest::seeded(image, submitted)) {
            Ok(handle) => {
                submitted += 1;
                last_handle = Some(handle);
            }
            Err(ServeError::Overloaded { .. }) => {
                submitted += 1;
                shed += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    if let Some(handle) = last_handle {
        let _ = handle.wait();
    }
    let elapsed = started.elapsed();
    let stats = core.stats();
    core.shutdown();
    ArmResult {
        completed_rps: stats.completed as f64 / elapsed.as_secs_f64(),
        shed,
        p50_us: stats.latency_p50_us,
        p99_us: stats.latency_p99_us,
        mean_batch: stats.mean_batch,
    }
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN medians"));
    values[values.len() / 2]
}

fn append_bench_json(arm: &Arm, result: &ArmResult) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let line = format!(
        "{{\"bench\":\"serve_load\",\"config\":\"{}\",\"offered_rps\":{},\"completed_rps\":{:.1},\"shed\":{},\"p50_us\":{},\"p99_us\":{},\"mean_batch\":{:.2}}}\n",
        arm.config_label,
        arm.offered_rps,
        result.completed_rps,
        result.shed,
        result.p50_us,
        result.p99_us,
        result.mean_batch,
    );
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut file) => {
            if let Err(err) = file.write_all(line.as_bytes()) {
                eprintln!("BENCH_JSON: could not append to {path}: {err}");
            }
        }
        Err(err) => eprintln!("BENCH_JSON: could not open {path}: {err}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (duration, reps, loads): (Duration, usize, &[u64]) = if smoke {
        (Duration::from_millis(150), 1, &[2_000])
    } else {
        (Duration::from_secs(2), 3, &[1_000, 2_000, 4_000, 8_000])
    };
    let engine = build_engine();
    // Warm the engine (first inference pays one-time lazy setup).
    engine.session().run(&test_image(0)).expect("warmup run");

    println!(
        "serve_load: open-loop, {} engine threads, {duration:?}/arm, {reps} rep(s)",
        ENGINE_THREADS
    );
    println!(
        "{:<10} {:>12} {:>14} {:>8} {:>10} {:>10} {:>10}",
        "config", "offered_rps", "completed_rps", "shed", "p50_us", "p99_us", "mean_batch"
    );
    for &offered_rps in loads {
        for (config_label, max_batch) in [("batch1", 1usize), ("batch8", 8usize)] {
            let arm = Arm {
                config_label,
                max_batch,
                offered_rps,
            };
            let runs: Vec<ArmResult> = (0..reps)
                .map(|_| run_arm(&engine, &arm, duration))
                .collect();
            let result = ArmResult {
                completed_rps: median(runs.iter().map(|r| r.completed_rps).collect()),
                shed: {
                    let mut sheds: Vec<u64> = runs.iter().map(|r| r.shed).collect();
                    sheds.sort_unstable();
                    sheds[sheds.len() / 2]
                },
                p50_us: {
                    let mut v: Vec<u64> = runs.iter().map(|r| r.p50_us).collect();
                    v.sort_unstable();
                    v[v.len() / 2]
                },
                p99_us: {
                    let mut v: Vec<u64> = runs.iter().map(|r| r.p99_us).collect();
                    v.sort_unstable();
                    v[v.len() / 2]
                },
                mean_batch: median(runs.iter().map(|r| r.mean_batch).collect()),
            };
            println!(
                "{:<10} {:>12} {:>14.1} {:>8} {:>10} {:>10} {:>10.2}",
                arm.config_label,
                arm.offered_rps,
                result.completed_rps,
                result.shed,
                result.p50_us,
                result.p99_us,
                result.mean_batch,
            );
            append_bench_json(&arm, &result);
        }
    }
}
