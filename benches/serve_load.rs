//! Open-loop load generator for the `snn-serve` dynamic-batching core.
//!
//! Unlike the criterion benches, serving performance is a function of the
//! *offered load*, so this harness drives `ServeCore<Engine>` with requests
//! submitted on a fixed schedule (open loop: the generator never waits for
//! responses, exactly like independent clients) and reports, per arm:
//!
//! * sustained throughput (completed requests / wall time, including drain),
//! * shed count (`Overloaded` rejections at the queue's high-water mark),
//! * end-to-end p50/p99 latency and the mean coalesced batch size, straight
//!   from `ServeCore::stats`.
//!
//! Arms: offered loads × batching configs, always including the
//! `max_batch = 1` baseline so the benefit of coalescing (the engine's
//! worker threads fan a coalesced batch out; a batch of one cannot be
//! parallelised) is measured rather than assumed. Full runs repeat each arm
//! three times and report medians; `--test` runs one short pass per arm as a
//! CI smoke.
//!
//! Run with: `cargo bench --bench serve_load`
//! Machine-readable output: `BENCH_JSON=out.json cargo bench --bench
//! serve_load` appends one JSON line per arm (see `BENCH_serve.json` for the
//! checked-in history).

use snn::core::encoding::Encoder;
use snn::core::network::{vgg9, Vgg9Config};
use snn::core::tensor::Tensor;
use snn::serve::{
    FaultPlan, FaultyModel, InferenceRequest, ModelZoo, ResponseHandle, RetryPolicy, ServeConfig,
    ServeCore, ServeError, ZooConfig,
};
use snn::{Engine, Precision};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Worker threads the engine fans a coalesced batch out over. Fixed (not
/// `SNN_THREADS`) so arms are comparable across environments.
const ENGINE_THREADS: usize = 4;

struct Arm {
    config_label: &'static str,
    max_batch: usize,
    offered_rps: u64,
}

#[derive(Debug, Clone)]
struct ArmResult {
    completed_rps: f64,
    shed: u64,
    p50_us: u64,
    p99_us: u64,
    mean_batch: f64,
}

fn build_engine() -> Engine {
    Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).expect("vgg9 builds"))
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("serve-bench", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .threads(ENGINE_THREADS)
        .build()
        .expect("engine builds")
}

fn test_image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], move |p| {
        (((p + 31 * i) as f32) * 0.017).sin().abs()
    })
}

/// Sleeps (coarsely) then spins (finely) until `deadline`; open-loop pacing
/// needs sub-millisecond cadence that `thread::sleep` alone cannot hold.
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > Duration::from_millis(1) {
            std::thread::sleep(left - Duration::from_millis(1));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Drives one arm: open-loop submission for `duration`, then a wait on the
/// last accepted request so the drain is inside the measured wall time (the
/// queue is FIFO — once the last accepted request completes, all do).
fn run_arm(engine: &Engine, arm: &Arm, duration: Duration) -> ArmResult {
    let config = ServeConfig {
        max_batch: arm.max_batch,
        max_delay: Duration::from_millis(1),
        queue_capacity: 256,
        ..ServeConfig::default()
    };
    let core = ServeCore::start(engine.clone(), config).expect("core starts");
    let interval = Duration::from_nanos(1_000_000_000 / arm.offered_rps.max(1));
    let images: Vec<Tensor> = (0..16).map(test_image).collect();

    let started = Instant::now();
    let mut next = started;
    let mut submitted = 0u64;
    let mut shed = 0u64;
    let mut last_handle = None;
    while started.elapsed() < duration {
        pace_until(next);
        next += interval;
        let image = images[(submitted % images.len() as u64) as usize].clone();
        match core.submit(InferenceRequest::seeded(image, submitted)) {
            Ok(handle) => {
                submitted += 1;
                last_handle = Some(handle);
            }
            Err(ServeError::Overloaded { .. }) => {
                submitted += 1;
                shed += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    if let Some(handle) = last_handle {
        let _ = handle.wait();
    }
    let elapsed = started.elapsed();
    let stats = core.stats();
    core.shutdown();
    ArmResult {
        completed_rps: stats.completed as f64 / elapsed.as_secs_f64(),
        shed,
        p50_us: stats.latency_p50_us,
        p99_us: stats.latency_p99_us,
        mean_batch: stats.mean_batch,
    }
}

/// Same open loop as [`run_arm`], but through a one-model [`ModelZoo`]
/// with the request routed by name — so the measurement includes the full
/// registry data plane: name lookup, the per-batch epoch check of the
/// swappable runner, and the per-result drift observation.
fn run_zoo_arm(engine: &Engine, arm: &Arm, duration: Duration) -> ArmResult {
    let zoo = ModelZoo::new();
    zoo.register(
        "primary",
        "v1",
        engine.clone(),
        ZooConfig {
            serve: ServeConfig {
                max_batch: arm.max_batch,
                max_delay: Duration::from_millis(1),
                queue_capacity: 256,
                ..ServeConfig::default()
            },
            ..ZooConfig::default()
        },
    )
    .expect("zoo registers");
    let interval = Duration::from_nanos(1_000_000_000 / arm.offered_rps.max(1));
    let images: Vec<Tensor> = (0..16).map(test_image).collect();

    let started = Instant::now();
    let mut next = started;
    let mut submitted = 0u64;
    let mut shed = 0u64;
    let mut last_handle = None;
    while started.elapsed() < duration {
        pace_until(next);
        next += interval;
        let image = images[(submitted % images.len() as u64) as usize].clone();
        let request = InferenceRequest::seeded(image, submitted).with_model("primary");
        match zoo.submit(request) {
            Ok(handle) => {
                submitted += 1;
                last_handle = Some(handle);
            }
            Err(ServeError::Overloaded { .. }) => {
                submitted += 1;
                shed += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    if let Some(handle) = last_handle {
        let _ = handle.wait();
    }
    let elapsed = started.elapsed();
    let stats = zoo.stats().models["primary"].serve.clone();
    zoo.shutdown();
    ArmResult {
        completed_rps: stats.completed as f64 / elapsed.as_secs_f64(),
        shed,
        p50_us: stats.latency_p50_us,
        p99_us: stats.latency_p99_us,
        mean_batch: stats.mean_batch,
    }
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN medians"));
    values[values.len() / 2]
}

fn append_bench_json(arm: &Arm, result: &ArmResult) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let line = format!(
        "{{\"bench\":\"serve_load\",\"config\":\"{}\",\"offered_rps\":{},\"completed_rps\":{:.1},\"shed\":{},\"p50_us\":{},\"p99_us\":{},\"mean_batch\":{:.2}}}\n",
        arm.config_label,
        arm.offered_rps,
        result.completed_rps,
        result.shed,
        result.p50_us,
        result.p99_us,
        result.mean_batch,
    );
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut file) => {
            if let Err(err) = file.write_all(line.as_bytes()) {
                eprintln!("BENCH_JSON: could not append to {path}: {err}");
            }
        }
        Err(err) => eprintln!("BENCH_JSON: could not open {path}: {err}"),
    }
}

/// A response only counts as *goodput* if it is `Ok` and arrives within the
/// client's latency budget — under overload, late answers are worthless.
const CLIENT_BUDGET: Duration = Duration::from_millis(50);

/// The per-request deadline the deadline-shedding arm runs with (strictly
/// inside [`CLIENT_BUDGET`], leaving room for service time).
const ARM_DEADLINE: Duration = Duration::from_millis(25);

#[derive(Debug, Clone)]
struct FaultArmResult {
    goodput_rps: f64,
    completed_rps: f64,
    shed: u64,
    retries: u64,
    deadline_expired: u64,
    model_panics: u64,
    worker_restarts: u64,
    p50_us: u64,
}

enum SubmitOutcome {
    Accepted,
    Retry(Instant),
    Dropped,
}

/// One submission attempt for logical request `id`; retryable rejections
/// (`Overloaded`, `DeadlineUnmeetable`, ...) are scheduled for a jittered
/// backoff retry per the client [`RetryPolicy`].
#[allow(clippy::too_many_arguments)]
fn attempt_submit<M: snn::serve::ServeModel>(
    core: &ServeCore<M>,
    images: &[Tensor],
    policy: &RetryPolicy,
    id: u64,
    attempt: u32,
    origin: Instant,
    tx: &mpsc::Sender<(Instant, ResponseHandle)>,
) -> SubmitOutcome {
    let image = images[(id % images.len() as u64) as usize].clone();
    match core.submit(InferenceRequest::seeded(image, id)) {
        Ok(handle) => {
            let _ = tx.send((origin, handle));
            SubmitOutcome::Accepted
        }
        Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
            SubmitOutcome::Retry(Instant::now() + policy.backoff_for(attempt, e.retry_after()))
        }
        Err(_) => SubmitOutcome::Dropped,
    }
}

/// Open-loop load against a fault-injected engine (8% model errors + 2%
/// panics), with the load generator acting as a retrying client. The two
/// arms differ only in `default_timeout`: with deadlines on, expired
/// requests are shed at dequeue instead of burning inference on answers
/// nobody is waiting for — that is exactly the goodput gap this measures.
fn run_fault_arm(
    engine: &Engine,
    deadline: Option<Duration>,
    offered_rps: u64,
    duration: Duration,
) -> FaultArmResult {
    let plan = FaultPlan::new(7)
        .with_error_rate(0.08)
        .with_panic_rate(0.02);
    let core = Arc::new(
        ServeCore::start(
            FaultyModel::new(engine.clone(), plan),
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
                queue_capacity: 256,
                default_timeout: deadline,
                restart_backoff: Duration::from_micros(200),
                ..ServeConfig::default()
            },
        )
        .expect("core starts"),
    );
    let images: Vec<Tensor> = (0..16).map(test_image).collect();
    let policy = RetryPolicy::new(0xC0FFEE)
        .with_max_attempts(3)
        .with_backoff(
            Duration::from_millis(1),
            Duration::from_millis(20),
            Duration::from_millis(40),
        );

    let good = Arc::new(AtomicU64::new(0));
    let (tx, rx) = mpsc::channel::<(Instant, ResponseHandle)>();
    let rx = Arc::new(Mutex::new(rx));
    let collectors: Vec<_> = (0..4)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let good = Arc::clone(&good);
            std::thread::spawn(move || loop {
                let received = rx.lock().expect("collector lock").recv();
                let Ok((origin, handle)) = received else {
                    return;
                };
                if handle.wait().is_ok() && origin.elapsed() <= CLIENT_BUDGET {
                    good.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // (due, origin, id, next attempt) — min-heap on the due time.
    let mut retry_heap: BinaryHeap<Reverse<(Instant, Instant, u64, u32)>> = BinaryHeap::new();
    let interval = Duration::from_nanos(1_000_000_000 / offered_rps.max(1));
    let started = Instant::now();
    let mut next = started;
    let mut id = 0u64;
    let mut shed = 0u64;
    let mut retries = 0u64;
    while started.elapsed() < duration {
        while let Some(&Reverse((due, origin, rid, attempt))) = retry_heap.peek() {
            if due > Instant::now() {
                break;
            }
            retry_heap.pop();
            retries += 1;
            match attempt_submit(&core, &images, &policy, rid, attempt, origin, &tx) {
                SubmitOutcome::Retry(due) => {
                    retry_heap.push(Reverse((due, origin, rid, attempt + 1)));
                }
                SubmitOutcome::Accepted | SubmitOutcome::Dropped => {}
            }
        }
        pace_until(next);
        next += interval;
        id += 1;
        let origin = Instant::now();
        match attempt_submit(&core, &images, &policy, id, 1, origin, &tx) {
            SubmitOutcome::Accepted => {}
            SubmitOutcome::Retry(due) => {
                shed += 1;
                retry_heap.push(Reverse((due, origin, id, 2)));
            }
            SubmitOutcome::Dropped => shed += 1,
        }
    }
    drop(tx);
    for collector in collectors {
        collector.join().expect("collector joins");
    }
    let elapsed = started.elapsed();
    let stats = core.stats();
    core.shutdown();
    FaultArmResult {
        goodput_rps: good.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64(),
        completed_rps: stats.completed as f64 / elapsed.as_secs_f64(),
        shed,
        retries,
        deadline_expired: stats.deadline_expired,
        model_panics: stats.model_panics,
        worker_restarts: stats.worker_restarts,
        p50_us: stats.latency_p50_us,
    }
}

fn median_fault(runs: &[FaultArmResult]) -> FaultArmResult {
    let mid = |mut v: Vec<u64>| {
        v.sort_unstable();
        v[v.len() / 2]
    };
    FaultArmResult {
        goodput_rps: median(runs.iter().map(|r| r.goodput_rps).collect()),
        completed_rps: median(runs.iter().map(|r| r.completed_rps).collect()),
        shed: mid(runs.iter().map(|r| r.shed).collect()),
        retries: mid(runs.iter().map(|r| r.retries).collect()),
        deadline_expired: mid(runs.iter().map(|r| r.deadline_expired).collect()),
        model_panics: mid(runs.iter().map(|r| r.model_panics).collect()),
        worker_restarts: mid(runs.iter().map(|r| r.worker_restarts).collect()),
        p50_us: mid(runs.iter().map(|r| r.p50_us).collect()),
    }
}

fn append_fault_json(label: &str, offered_rps: u64, result: &FaultArmResult) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let line = format!(
        "{{\"bench\":\"serve_load\",\"config\":\"{label}\",\"offered_rps\":{offered_rps},\"goodput_rps\":{:.1},\"completed_rps\":{:.1},\"shed\":{},\"retries\":{},\"deadline_expired\":{},\"model_panics\":{},\"worker_restarts\":{},\"p50_us\":{}}}\n",
        result.goodput_rps,
        result.completed_rps,
        result.shed,
        result.retries,
        result.deadline_expired,
        result.model_panics,
        result.worker_restarts,
        result.p50_us,
    );
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut file) => {
            if let Err(err) = file.write_all(line.as_bytes()) {
                eprintln!("BENCH_JSON: could not append to {path}: {err}");
            }
        }
        Err(err) => eprintln!("BENCH_JSON: could not open {path}: {err}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (duration, reps, loads): (Duration, usize, &[u64]) = if smoke {
        (Duration::from_millis(150), 1, &[2_000])
    } else {
        (Duration::from_secs(2), 3, &[1_000, 2_000, 4_000, 8_000])
    };
    let engine = build_engine();
    // Warm the engine (first inference pays one-time lazy setup).
    engine.session().run(&test_image(0)).expect("warmup run");

    println!(
        "serve_load: open-loop, {} engine threads, {duration:?}/arm, {reps} rep(s)",
        ENGINE_THREADS
    );
    println!(
        "{:<10} {:>12} {:>14} {:>8} {:>10} {:>10} {:>10}",
        "config", "offered_rps", "completed_rps", "shed", "p50_us", "p99_us", "mean_batch"
    );
    for &offered_rps in loads {
        for (config_label, max_batch) in [("batch1", 1usize), ("batch8", 8usize)] {
            let arm = Arm {
                config_label,
                max_batch,
                offered_rps,
            };
            let runs: Vec<ArmResult> = (0..reps)
                .map(|_| run_arm(&engine, &arm, duration))
                .collect();
            let result = ArmResult {
                completed_rps: median(runs.iter().map(|r| r.completed_rps).collect()),
                shed: {
                    let mut sheds: Vec<u64> = runs.iter().map(|r| r.shed).collect();
                    sheds.sort_unstable();
                    sheds[sheds.len() / 2]
                },
                p50_us: {
                    let mut v: Vec<u64> = runs.iter().map(|r| r.p50_us).collect();
                    v.sort_unstable();
                    v[v.len() / 2]
                },
                p99_us: {
                    let mut v: Vec<u64> = runs.iter().map(|r| r.p99_us).collect();
                    v.sort_unstable();
                    v[v.len() / 2]
                },
                mean_batch: median(runs.iter().map(|r| r.mean_batch).collect()),
            };
            println!(
                "{:<10} {:>12} {:>14.1} {:>8} {:>10} {:>10} {:>10.2}",
                arm.config_label,
                arm.offered_rps,
                result.completed_rps,
                result.shed,
                result.p50_us,
                result.p99_us,
                result.mean_batch,
            );
            append_bench_json(&arm, &result);
        }
    }

    // Registry routing overhead: the 2000-rps batch8 arm again, but routed
    // by name through a one-model ModelZoo (registry lookup + epoch-pinned
    // runner + drift observation on every result). The registry is control
    // plane only — the data plane must stay within host noise of the bare
    // core, which the assertion below enforces so the CI smoke catches a
    // hot-path regression (a lock on the submit path, say) the moment it
    // lands.
    let overhead_arm = Arm {
        config_label: "zoo_batch8",
        max_batch: 8,
        offered_rps: 2_000,
    };
    let bare = median(
        (0..reps)
            .map(|_| run_arm(&engine, &overhead_arm, duration).completed_rps)
            .collect(),
    );
    let zoo_runs: Vec<ArmResult> = (0..reps)
        .map(|_| run_zoo_arm(&engine, &overhead_arm, duration))
        .collect();
    let zoo_result = ArmResult {
        completed_rps: median(zoo_runs.iter().map(|r| r.completed_rps).collect()),
        shed: {
            let mut v: Vec<u64> = zoo_runs.iter().map(|r| r.shed).collect();
            v.sort_unstable();
            v[v.len() / 2]
        },
        p50_us: {
            let mut v: Vec<u64> = zoo_runs.iter().map(|r| r.p50_us).collect();
            v.sort_unstable();
            v[v.len() / 2]
        },
        p99_us: {
            let mut v: Vec<u64> = zoo_runs.iter().map(|r| r.p99_us).collect();
            v.sort_unstable();
            v[v.len() / 2]
        },
        mean_batch: median(zoo_runs.iter().map(|r| r.mean_batch).collect()),
    };
    println!("\nserve_load: zoo routing overhead (one model, name-routed, vs bare core)");
    println!(
        "{:<10} {:>12} {:>14} {:>8} {:>10} {:>10} {:>10}",
        "config", "offered_rps", "completed_rps", "shed", "p50_us", "p99_us", "mean_batch"
    );
    println!(
        "{:<10} {:>12} {:>14.1} {:>8} {:>10} {:>10} {:>10.2}",
        "bare_batch8", overhead_arm.offered_rps, bare, "-", "-", "-", "-"
    );
    println!(
        "{:<10} {:>12} {:>14.1} {:>8} {:>10} {:>10} {:>10.2}",
        overhead_arm.config_label,
        overhead_arm.offered_rps,
        zoo_result.completed_rps,
        zoo_result.shed,
        zoo_result.p50_us,
        zoo_result.p99_us,
        zoo_result.mean_batch,
    );
    append_bench_json(&overhead_arm, &zoo_result);
    assert!(
        zoo_result.completed_rps >= 0.85 * bare,
        "zoo routing must be within host noise of the bare core \
         (zoo {:.1} rps vs bare {bare:.1} rps)",
        zoo_result.completed_rps,
    );

    // Goodput under faults: offered load beyond capacity, 10% injected
    // faults (8% model errors + 2% panics), the generator retrying with
    // jittered backoff. Deadline shedding must *strictly* improve goodput —
    // enforced below, so the CI smoke (`--test`) catches regressions.
    // Injected panics are caught by the serving core's supervision; keep
    // the default hook from spamming stderr with their backtraces while
    // still printing any *real* panic in full.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.contains("injected fault") {
            default_hook(info);
        }
    }));

    let fault_offered = 4_000;
    let fault_duration = if smoke {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(2)
    };
    println!(
        "\nserve_load: goodput under faults (8% errors + 2% panics, offered {fault_offered} rps, \
         client budget {CLIENT_BUDGET:?}, {fault_duration:?}/arm, {reps} rep(s))"
    );
    println!(
        "{:<22} {:>12} {:>14} {:>8} {:>8} {:>9} {:>8} {:>9} {:>10}",
        "config",
        "goodput_rps",
        "completed_rps",
        "shed",
        "retries",
        "expired",
        "panics",
        "restarts",
        "p50_us"
    );
    let mut goodput = Vec::new();
    for (label, deadline) in [
        ("faults_nodeadline", None),
        ("faults_deadline25ms", Some(ARM_DEADLINE)),
    ] {
        let runs: Vec<FaultArmResult> = (0..reps)
            .map(|_| run_fault_arm(&engine, deadline, fault_offered, fault_duration))
            .collect();
        let result = median_fault(&runs);
        println!(
            "{:<22} {:>12.1} {:>14.1} {:>8} {:>8} {:>9} {:>8} {:>9} {:>10}",
            label,
            result.goodput_rps,
            result.completed_rps,
            result.shed,
            result.retries,
            result.deadline_expired,
            result.model_panics,
            result.worker_restarts,
            result.p50_us,
        );
        append_fault_json(label, fault_offered, &result);
        goodput.push(result.goodput_rps);
    }
    assert!(
        goodput[1] > goodput[0],
        "deadline shedding must strictly improve goodput under overload \
         (with deadlines {:.1} rps vs without {:.1} rps)",
        goodput[1],
        goodput[0],
    );
}
