//! Criterion benches of the inference hot path.
//!
//! * `batch_inference` — `Session::run_batch` throughput (images/sec) on
//!   `Vgg9Config::cifar10_small` at batch sizes 1, 8, 32 and 64, using the
//!   engine's default worker-thread resolution (`SNN_THREADS` or the
//!   available parallelism).
//! * `sparse_conv` — event-driven `Conv2d::forward_spikes` vs the dense
//!   im2col + matmul forward on a CONV2-like layer at 5%/20%/50% input spike
//!   density, tracking the sparse/dense crossover that
//!   `Conv2d::sparse_crossover` encodes.
//!
//! Run with: `cargo bench --bench batch_inference`
//! Machine-readable output: `BENCH_JSON=BENCH_batch.json cargo bench ...`
//! appends one JSON line per benchmark (see `BENCH_batch.json` for the
//! checked-in baseline history).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snn::{Engine, Precision};
use snn_core::encoding::Encoder;
use snn_core::layers::Conv2d;
use snn_core::network::{vgg9, Vgg9Config};
use snn_core::spike::SpikePlane;
use snn_core::tensor::{Im2Col, Tensor};

fn bench_batches(c: &mut Criterion) {
    let cfg = Vgg9Config::cifar10_small();
    let engine = Engine::builder()
        .network(vgg9(&cfg).expect("vgg9 builds"))
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("bench", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .build()
        .expect("engine builds");
    let mut session = engine.session();

    let mut group = c.benchmark_group("batch_inference");
    for &batch in &[1_usize, 8, 32, 64] {
        let images: Vec<Tensor> = (0..batch)
            .map(|i| {
                Tensor::from_fn(&[3, 16, 16], move |p| {
                    (((p + 31 * i) as f32) * 0.017).sin().abs()
                })
            })
            .collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &images, |b, images| {
            b.iter(|| session.run_batch(images).expect("batch runs"));
        });
    }
    group.finish();
}

/// Deterministic binary input at (approximately) the requested density.
fn spike_input(shape: &[usize], density: f64) -> Tensor {
    Tensor::from_fn(shape, |i| {
        if ((i.wrapping_mul(2_654_435_761)) % 1000) as f64 / 1000.0 < density {
            1.0
        } else {
            0.0
        }
    })
}

fn bench_sparse_conv(c: &mut Criterion) {
    // CONV2-like geometry from the small model: 16 -> 16 channels on an
    // 8x8 map, 3x3 same-padding.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let conv = Conv2d::with_kaiming_init(16, 16, 3, 1, 1, &mut rng).expect("conv builds");
    let mut group = c.benchmark_group("sparse_conv");
    for &density in &[0.05_f64, 0.2, 0.5] {
        let input = spike_input(&[16, 8, 8], density);
        let plane = SpikePlane::from_tensor(&input);
        group.bench_with_input(
            BenchmarkId::new("event", format!("{:.0}%", density * 100.0)),
            &plane,
            |b, plane| {
                b.iter(|| conv.forward_spikes(plane).expect("sparse forward"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dense", format!("{:.0}%", density * 100.0)),
            &input,
            |b, input| {
                let mut scratch = Im2Col::default();
                let mut out = Tensor::zeros(&[0]);
                b.iter(|| {
                    conv.forward_into(input, &mut scratch, &mut out)
                        .expect("dense forward")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batches, bench_sparse_conv);
criterion_main!(benches);
