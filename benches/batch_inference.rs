//! Criterion benches of the inference and training hot paths.
//!
//! * `batch_inference` — `Session::run_batch` throughput (images/sec) on
//!   `Vgg9Config::cifar10_small` at batch sizes 1, 8, 32 and 64, using the
//!   engine's default worker-thread resolution (`SNN_THREADS` or the
//!   available parallelism).
//! * `sparse_conv` — event-driven `Conv2d::forward_spikes` vs the dense
//!   im2col + matmul forward on a CONV2-like layer at 5%/20%/50% input spike
//!   density, tracking the sparse/dense crossover that
//!   `Conv2d::sparse_crossover` encodes.
//! * `sparse_word_scan` — the word-scan event kernels (`forward_spikes`
//!   iterating the plane's `u64` mask words) vs the retained index-list
//!   oracles (`forward_spikes_indexed`) on conv and linear layers at
//!   5%/20%/50% density; asserts (also in the `--test` CI smoke) that the
//!   word path is not slower than the index path at the layer's calibrated
//!   event/dense crossover density.
//! * `matmul_blocked_vs_naive` — the cache-blocked `matmul_to` kernel vs the
//!   retained `matmul_naive_to` reference on paper-scale dense-fallback
//!   shapes (results are bitwise identical; only the speed differs).
//! * `bptt_backward` — the backward pass alone, driven repeatedly against
//!   one cached forward sweep: the persistent-scratch production path vs a
//!   fresh scratch per call (gradients are bitwise identical; only the
//!   allocation behaviour differs).
//! * `bptt_input_grad` — the fused event-aware conv input-gradient kernel
//!   (`conv2d_input_grad_into`: cached `Wᵀ`, blocked matmul fused with the
//!   col2im scatter, all-zero gradient columns skipped) vs the unfused
//!   `matmul_at_b_to` + `col2im_into` reference, at 100%/25%/5% active
//!   gradient columns (results are bitwise identical).
//! * `train_epoch` — one BPTT sample (event-driven vs retained dense sweep)
//!   and one full `Trainer::fit` epoch over 8 synthetic samples at 1/2/4
//!   worker threads (bitwise-identical results at every thread count).
//! * `train_checkpoint` — atomic checkpoint save/load latency plus 8-epoch
//!   fits at checkpoint cadences none / every-8-steps / every-step; asserts
//!   (also in the `--test` CI smoke) that the every-8 cadence costs under 5%
//!   of epoch time.
//!
//! Run with: `cargo bench --bench batch_inference`
//! Machine-readable output: `BENCH_JSON=out.json cargo bench ...` appends
//! one JSON line per benchmark (see `BENCH_batch.json` / `BENCH_matmul.json`
//! for the checked-in baseline history).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snn::train::bptt::{Bptt, BpttScratch};
use snn::train::surrogate::SurrogateKind;
use snn::train::trainer::{StopHandle, TrainConfig, Trainer};
use snn::train::TrainCheckpoint;
use snn::{Engine, Precision};
use snn_core::encoding::Encoder;
use snn_core::layers::{Conv2d, ConvScratch};
use snn_core::network::{vgg9, Vgg9Config};
use snn_core::spike::SpikePlane;
use snn_core::tensor::{matmul_naive_to, matmul_to_with, Tensor};
use snn_data::{SyntheticConfig, SyntheticDataset};

fn bench_batches(c: &mut Criterion) {
    let cfg = Vgg9Config::cifar10_small();
    let engine = Engine::builder()
        .network(vgg9(&cfg).expect("vgg9 builds"))
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("bench", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .build()
        .expect("engine builds");
    let mut session = engine.session();

    let mut group = c.benchmark_group("batch_inference");
    for &batch in &[1_usize, 8, 32, 64] {
        let images: Vec<Tensor> = (0..batch)
            .map(|i| {
                Tensor::from_fn(&[3, 16, 16], move |p| {
                    (((p + 31 * i) as f32) * 0.017).sin().abs()
                })
            })
            .collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &images, |b, images| {
            b.iter(|| session.run_batch(images).expect("batch runs"));
        });
    }
    group.finish();
}

/// Deterministic binary input at (approximately) the requested density.
fn spike_input(shape: &[usize], density: f64) -> Tensor {
    Tensor::from_fn(shape, |i| {
        if ((i.wrapping_mul(2_654_435_761)) % 1000) as f64 / 1000.0 < density {
            1.0
        } else {
            0.0
        }
    })
}

fn bench_sparse_conv(c: &mut Criterion) {
    // CONV2-like geometry from the small model: 16 -> 16 channels on an
    // 8x8 map, 3x3 same-padding.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let conv = Conv2d::with_kaiming_init(16, 16, 3, 1, 1, &mut rng).expect("conv builds");
    let mut group = c.benchmark_group("sparse_conv");
    for &density in &[0.05_f64, 0.2, 0.5] {
        let input = spike_input(&[16, 8, 8], density);
        let plane = SpikePlane::from_tensor(&input);
        group.bench_with_input(
            BenchmarkId::new("event", format!("{:.0}%", density * 100.0)),
            &plane,
            |b, plane| {
                b.iter(|| conv.forward_spikes(plane).expect("sparse forward"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dense", format!("{:.0}%", density * 100.0)),
            &input,
            |b, input| {
                let mut scratch = ConvScratch::new();
                let mut out = Tensor::zeros(&[0]);
                b.iter(|| {
                    conv.forward_into(input, &mut scratch, &mut out)
                        .expect("dense forward")
                });
            },
        );
    }
    group.finish();
}

fn bench_sparse_word_scan(c: &mut Criterion) {
    use snn_core::layers::Linear;

    // Word-scan event kernels (trailing-zeros over the plane's u64 mask
    // words) vs the retained index-list oracles, on the same CONV2-like
    // geometry as `sparse_conv` plus a classifier-head linear. All arms are
    // bitwise identical; only the sparse-set traversal differs.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let conv = Conv2d::with_kaiming_init(16, 16, 3, 1, 1, &mut rng).expect("conv builds");
    let fc = Linear::with_kaiming_init(512, 16, &mut rng).expect("linear builds");
    let mut group = c.benchmark_group("sparse_word_scan");
    for &density in &[0.05_f64, 0.2, 0.5] {
        let label = format!("{:.0}%", density * 100.0);
        let plane = SpikePlane::from_tensor(&spike_input(&[16, 8, 8], density));
        group.bench_with_input(BenchmarkId::new("conv_word", &label), &plane, |b, p| {
            b.iter(|| conv.forward_spikes(p).expect("word forward"));
        });
        group.bench_with_input(BenchmarkId::new("conv_index", &label), &plane, |b, p| {
            b.iter(|| conv.forward_spikes_indexed(p).expect("indexed forward"));
        });
        let flat = SpikePlane::from_tensor(&spike_input(&[512], density));
        group.bench_with_input(BenchmarkId::new("linear_word", &label), &flat, |b, p| {
            b.iter(|| fc.forward_spikes(p).expect("word forward"));
        });
        group.bench_with_input(BenchmarkId::new("linear_index", &label), &flat, |b, p| {
            b.iter(|| fc.forward_spikes_indexed(p).expect("indexed forward"));
        });
    }
    group.finish();

    // Regression contract, enforced in the CI smoke (`--test`) and in full
    // runs alike: at the layer's calibrated event/dense crossover density —
    // the highest density the event path ever serves in production — the
    // word scan must not be slower than the index walk it replaced (with a
    // 1.5x guard band so scheduler noise can't flake CI). Measured directly
    // with medians, like the train_checkpoint overhead contract.
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    };
    let crossover = conv.sparse_crossover();
    let plane = SpikePlane::from_tensor(&spike_input(&[16, 8, 8], crossover));
    let time = |f: &dyn Fn()| {
        let mut samples: Vec<f64> = (0..31)
            .map(|_| {
                let start = std::time::Instant::now();
                for _ in 0..8 {
                    f();
                }
                start.elapsed().as_secs_f64() / 8.0
            })
            .collect();
        median(&mut samples)
    };
    // Warm both paths, then interleave the measurements.
    conv.forward_spikes(&plane).expect("warm");
    conv.forward_spikes_indexed(&plane).expect("warm");
    let word = time(&|| {
        conv.forward_spikes(&plane).expect("word forward");
    });
    let index = time(&|| {
        conv.forward_spikes_indexed(&plane)
            .expect("indexed forward");
    });
    println!(
        "sparse_word_scan crossover ({:.0}% density): word {:.2} us, index {:.2} us, \
         ratio {:.2} (must stay < 1.5)",
        crossover * 100.0,
        word * 1e6,
        index * 1e6,
        word / index
    );
    assert!(
        word < index * 1.5,
        "word-scan conv forward regressed past the index-list oracle at the \
         {:.0}% crossover density: word {:.2} us vs index {:.2} us",
        crossover * 100.0,
        word * 1e6,
        index * 1e6
    );
}

/// Deterministic dense matrix with ~25% exact zeros, the regime the
/// zero-skipping kernels see on membrane-current inputs.
fn bench_matrix(rows: usize, cols: usize, seed: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| {
            let h = (i + seed).wrapping_mul(2_654_435_761) % 1000;
            if h < 250 {
                0.0
            } else {
                (h as f32 - 500.0) * 1e-3
            }
        })
        .collect()
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_blocked_vs_naive");
    // Paper-scale dense-fallback shapes: CONV1_1 (the analog direct-coded
    // input layer, 64×27 filter bank over a 32×32 map) and a CONV2_2-like
    // deep-layer geometry where the im2col matrix no longer fits L1.
    for &(label, m, k, n) in &[
        ("conv1_1_64x27x1024", 64_usize, 27_usize, 1024_usize),
        ("conv2_2_216x1008x256", 216, 1008, 256),
    ] {
        let a = bench_matrix(m, k, 1);
        let b = bench_matrix(k, n, 2);
        let mut out = vec![0.0_f32; m * n];
        let mut panel = Vec::new();
        group.bench_function(BenchmarkId::new("blocked", label), |bch| {
            bch.iter(|| matmul_to_with(&a, &b, m, k, n, &mut out, &mut panel));
        });
        group.bench_function(BenchmarkId::new("naive", label), |bch| {
            bch.iter(|| matmul_naive_to(&a, &b, m, k, n, &mut out));
        });
    }
    group.finish();
}

fn bench_bptt_backward(c: &mut Criterion) {
    let net = vgg9(&Vgg9Config::cifar10_small()).expect("vgg9 builds");
    let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.017).sin().abs());
    let encoder = Encoder::paper_direct();
    let bptt = Bptt::new(
        SurrogateKind::paper_default(),
        snn_core::quant::Precision::Fp32,
    );
    let effective = bptt.prepare(&net).expect("prepare");
    let sweep = bptt
        .forward_sweep(&net, &effective, &image, &encoder, 0)
        .expect("forward sweep");

    let mut group = c.benchmark_group("bptt_backward");
    // The production path: one persistent scratch reused across calls —
    // after the first call the backward allocates nothing per timestep.
    let mut scratch = BpttScratch::new();
    group.bench_function("scratch", |b| {
        b.iter(|| {
            bptt.backward_sweep(&net, &effective, &sweep, 3, &mut scratch)
                .expect("backward")
        });
    });
    // A cold scratch per call isolates what the buffer reuse buys.
    group.bench_function("fresh_scratch", |b| {
        b.iter(|| {
            let mut cold = BpttScratch::new();
            bptt.backward_sweep(&net, &effective, &sweep, 3, &mut cold)
                .expect("backward")
        });
    });
    group.finish();
}

fn bench_input_grad(c: &mut Criterion) {
    use snn::train::grad::{conv2d_input_grad_into, GradScratch};
    use snn_core::tensor::{matmul_at_b_to, Im2Col};

    // CONV2-like geometry from the small model: 16 -> 16 channels on an
    // 8x8 map, 3x3 same-padding (coeffs = 144, spatial = 64).
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let conv = Conv2d::with_kaiming_init(16, 16, 3, 1, 1, &mut rng).expect("conv builds");
    let input_shape = [16_usize, 8, 8];
    let out_shape = conv.output_shape(&input_shape).expect("geometry");
    let spatial = out_shape[1] * out_shape[2];
    let coeffs = conv.coefficients_per_output();
    conv.transposed_weight(); // warmed once per batch by Bptt::prepare

    let mut group = c.benchmark_group("bptt_input_grad");
    for &(label, frac) in &[("dense", 1.0_f64), ("cols25%", 0.25), ("cols5%", 0.05)] {
        // Gradient frame with only ~frac of its output columns non-zero —
        // the regime the pool-routed, carry-free final timestep produces.
        let grad = Tensor::from_fn(&out_shape, |i| {
            let s = i % spatial;
            if ((s.wrapping_mul(2_654_435_761)) % 1000) as f64 / 1000.0 < frac {
                ((i as f32) * 0.37).sin() * 1e-2
            } else {
                0.0
            }
        });
        group.bench_function(BenchmarkId::new("fused", label), |b| {
            let mut scratch = GradScratch::new();
            let mut out = Tensor::default();
            b.iter(|| {
                conv2d_input_grad_into(&conv, &input_shape, &grad, &mut scratch, &mut out)
                    .expect("fused input grad")
            });
        });
        group.bench_function(BenchmarkId::new("unfused", label), |b| {
            let mut cols = Im2Col {
                data: Vec::new(),
                rows: coeffs,
                cols: spatial,
                out_h: out_shape[1],
                out_w: out_shape[2],
            };
            let mut out = Tensor::default();
            b.iter(|| {
                cols.data.clear();
                cols.data.resize(coeffs * spatial, 0.0);
                matmul_at_b_to(
                    conv.weight().as_slice(),
                    grad.as_slice(),
                    conv.out_channels(),
                    coeffs,
                    spatial,
                    &mut cols.data,
                );
                Tensor::col2im_into(&cols, 16, 8, 8, (3, 3), 1, 1, &mut out)
                    .expect("unfused input grad")
            });
        });
    }
    group.finish();
}

fn bench_train(c: &mut Criterion) {
    let net = vgg9(&Vgg9Config::cifar10_small()).expect("vgg9 builds");
    let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.017).sin().abs());
    let encoder = Encoder::paper_direct();
    let bptt = Bptt::new(
        SurrogateKind::paper_default(),
        snn_core::quant::Precision::Fp32,
    );
    let effective = bptt.prepare(&net).expect("prepare");
    let data = SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 20, 10));

    let mut group = c.benchmark_group("train_epoch");
    // One forward+backward sample: the shipped event-driven sweep vs the
    // retained dense reference sweep (bitwise-equal gradients).
    group.bench_function("sample_event", |b| {
        b.iter(|| {
            bptt.sample_gradients_prepared(&net, &effective, &image, 3, &encoder, 0)
                .expect("event sweep")
        });
    });
    group.bench_function("sample_dense", |b| {
        b.iter(|| {
            bptt.sample_gradients_dense(&net, &image, 3, &encoder, 0)
                .expect("dense sweep")
        });
    });
    // A full epoch through the trainer: 8 samples, batch 4, at 1/2/4 worker
    // threads. The reference machine has one core, so the >1-thread arms
    // measure pool overhead there and scaling on multi-core runners; results
    // are bitwise identical at every thread count.
    for &threads in &[1_usize, 2, 4] {
        let mut cfg = TrainConfig::quick();
        cfg.max_train_samples = Some(8);
        cfg.batch_size = 4;
        cfg.threads = threads;
        group.bench_function(BenchmarkId::new("fit_8samples_threads", threads), |b| {
            b.iter(|| {
                let mut trainer = Trainer::new(cfg.clone()).expect("config");
                let mut train_net = net.clone();
                trainer.fit(&mut train_net, &data).expect("fit")
            });
        });
    }
    group.finish();
}

fn bench_train_checkpoint(c: &mut Criterion) {
    let data = SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 20, 10));
    let dir = std::env::temp_dir().join(format!("snn_bench_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let path = dir.join("bench.snntrain");

    let base_cfg = |every: usize, with_path: bool| {
        let mut cfg = TrainConfig::quick();
        cfg.epochs = 8;
        cfg.max_train_samples = Some(8);
        cfg.batch_size = 8; // one optimizer step per epoch
        cfg.threads = 1;
        cfg.checkpoint_every = every;
        cfg.checkpoint_path = with_path.then(|| path.clone());
        cfg
    };

    // A real mid-run checkpoint for the save/load arms: stop after 1 step.
    let checkpoint = {
        let stop = StopHandle::new();
        stop.stop_after_steps(1);
        let mut net = vgg9(&Vgg9Config::cifar10_small()).expect("vgg9 builds");
        let mut trainer = Trainer::new(base_cfg(1, true)).expect("config");
        trainer
            .fit_with_stop(&mut net, &data, &stop)
            .expect("checkpointed run");
        TrainCheckpoint::load(&path).expect("load checkpoint")
    };

    let mut group = c.benchmark_group("train_checkpoint");
    // Atomic durable save (temp file + fsync + rename + CRC-64 trailer) and
    // the matching verified load.
    group.bench_function("save", |b| {
        b.iter(|| checkpoint.save(&path).expect("save"));
    });
    group.bench_function("load", |b| {
        b.iter(|| TrainCheckpoint::load(&path).expect("load"));
    });
    // Full 8-epoch fits (one step per epoch) at checkpoint cadences: none,
    // every 8 steps (the documented ops cadence) and every step.
    for &(every, with_path, label) in &[
        (0_usize, false, "none"),
        (8, true, "every8"),
        (1, true, "every1"),
    ] {
        let cfg = base_cfg(every, with_path);
        group.bench_function(BenchmarkId::new("fit_8epochs_ckpt", label), |b| {
            b.iter(|| {
                let mut trainer = Trainer::new(cfg.clone()).expect("config");
                let mut net = vgg9(&Vgg9Config::cifar10_small()).expect("vgg9 builds");
                trainer.fit(&mut net, &data).expect("fit")
            });
        });
    }
    group.finish();

    // Overhead contract, enforced in the CI smoke (`--test`) and in full
    // runs alike: at `checkpoint_every = 8`, checkpointing costs at most one
    // save per 8 optimizer steps, so its per-epoch overhead (save/8 here,
    // with one step per epoch) must stay under 5% of the epoch time.
    // Measured directly with medians so bench-loop noise can't flake CI.
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    };
    let mut save_times: Vec<f64> = (0..9)
        .map(|_| {
            let start = std::time::Instant::now();
            checkpoint.save(&path).expect("save");
            start.elapsed().as_secs_f64()
        })
        .collect();
    let mut epoch_times: Vec<f64> = (0..3)
        .map(|_| {
            let mut cfg = base_cfg(0, false);
            cfg.epochs = 1;
            let mut trainer = Trainer::new(cfg).expect("config");
            let mut net = vgg9(&Vgg9Config::cifar10_small()).expect("vgg9 builds");
            let start = std::time::Instant::now();
            trainer.fit(&mut net, &data).expect("fit");
            start.elapsed().as_secs_f64()
        })
        .collect();
    let save = median(&mut save_times);
    let epoch = median(&mut epoch_times);
    let overhead = save / 8.0 / epoch;
    println!(
        "train_checkpoint overhead: save {:.1} us, epoch {:.1} us, \
         every=8 overhead {:.2}% (must stay < 5%)",
        save * 1e6,
        epoch * 1e6,
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "checkpoint overhead at checkpoint_every=8 must stay under 5% of \
         epoch time (save {:.1} us, epoch {:.1} us, overhead {:.2}%)",
        save * 1e6,
        epoch * 1e6,
        overhead * 100.0
    );
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    benches,
    bench_batches,
    bench_sparse_conv,
    bench_sparse_word_scan,
    bench_matmul,
    bench_bptt_backward,
    bench_input_grad,
    bench_train,
    bench_train_checkpoint
);
criterion_main!(benches);
