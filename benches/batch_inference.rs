//! Criterion bench of `Session::run_batch` throughput (images/sec) on
//! `Vgg9Config::cifar10_small` at batch sizes 1, 8 and 32 — the baseline for
//! future parallelism work.
//!
//! Run with: `cargo bench --bench batch_inference`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snn::{Engine, Precision};
use snn_core::encoding::Encoder;
use snn_core::network::{vgg9, Vgg9Config};
use snn_core::tensor::Tensor;

fn bench_batches(c: &mut Criterion) {
    let cfg = Vgg9Config::cifar10_small();
    let engine = Engine::builder()
        .network(vgg9(&cfg).expect("vgg9 builds"))
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("bench", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .build()
        .expect("engine builds");
    let mut session = engine.session();

    let mut group = c.benchmark_group("batch_inference");
    for &batch in &[1_usize, 8, 32] {
        let images: Vec<Tensor> = (0..batch)
            .map(|i| {
                Tensor::from_fn(&[3, 16, 16], move |p| {
                    (((p + 31 * i) as f32) * 0.017).sin().abs()
                })
            })
            .collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &images, |b, images| {
            b.iter(|| session.run_batch(images).expect("batch runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batches);
criterion_main!(benches);
