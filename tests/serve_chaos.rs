//! Facade-level chaos: the real `Engine` behind a seeded `FaultPlan`.
//! Injected panics, model errors and latency must stay contained to their
//! own requests — and every request that survives the storm must return
//! logits and spike traces bitwise-identical to a sequential
//! `Session::run_seeded` call, because fault injection (like batching)
//! perturbs scheduling, never arithmetic.

use snn::core::encoding::Encoder;
use snn::core::network::{vgg9, Vgg9Config};
use snn::core::tensor::Tensor;
use snn::serve::{
    Fault, FaultPlan, FaultyModel, InferenceRequest, ResponseHandle, ServeConfig, ServeCore,
    ServeError,
};
use snn::{Engine, Precision, RunReport};
use std::time::Duration;

fn engine(threads: usize) -> Engine {
    Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::direct(2))
        .precision(Precision::Int4)
        .hardware_allocation("serve-chaos", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .threads(threads)
        .build()
        .unwrap()
}

fn test_image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], move |p| {
        (((p + 131 * i) as f32) * 0.017).sin().abs()
    })
}

fn sequential_reports(engine: &Engine, images: &[Tensor], seeds: &[u64]) -> Vec<RunReport> {
    let mut session = engine.session();
    images
        .iter()
        .zip(seeds)
        .map(|(image, &seed)| session.run_seeded(image, seed).unwrap())
        .collect()
}

#[test]
fn survivors_of_an_engine_fault_storm_stay_bitwise_deterministic() {
    let engine = engine(2);
    let n = 10;
    let images: Vec<Tensor> = (0..n).map(test_image).collect();
    let seeds: Vec<u64> = (0..n as u64).map(|i| 2000 + i * 13).collect();
    let expected = sequential_reports(&engine, &images, &seeds);

    for plan_seed in [7_u64, 1337] {
        let plan = FaultPlan::new(plan_seed)
            .with_panic_rate(0.15)
            .with_error_rate(0.15)
            .with_latency(0.2, Duration::from_millis(1));
        let core = ServeCore::start(
            FaultyModel::new(engine.clone(), plan),
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(2),
                queue_capacity: 64,
                workers: Some(2),
                restart_backoff: Duration::from_micros(200),
                ..ServeConfig::default()
            },
        )
        .unwrap();

        let handles: Vec<ResponseHandle> = images
            .iter()
            .zip(&seeds)
            .map(|(image, &seed)| {
                core.submit(InferenceRequest::seeded(image.clone(), seed))
                    .expect("queue sized for the burst")
            })
            .collect();

        let mut injected_panics = 0;
        for (i, handle) in handles.into_iter().enumerate() {
            let seed = seeds[i];
            let outcome = handle
                .wait_timeout(Duration::from_secs(120))
                .unwrap_or_else(|_| panic!("plan {plan_seed}: request {i} hung"));
            match (plan.fault_for(seed), outcome) {
                (Fault::None | Fault::Latency(_), Ok(response)) => {
                    let want = &expected[i];
                    assert_eq!(
                        response.result.logits, want.logits,
                        "plan {plan_seed}, request {i}: surviving logits must be \
                         bitwise-identical to run_seeded"
                    );
                    assert_eq!(response.result.prediction, want.prediction);
                    assert_eq!(
                        response.result.traces, want.traces,
                        "plan {plan_seed}, request {i}: spike traces must match bitwise"
                    );
                }
                // Collateral of a batch neighbour's injected panic.
                (Fault::None | Fault::Latency(_), Err(ServeError::ModelPanicked { .. })) => {
                    injected_panics += 1;
                }
                (Fault::Error, Err(ServeError::Model(_) | ServeError::ModelPanicked { .. })) => {}
                (Fault::Panic, Err(ServeError::ModelPanicked { .. })) => injected_panics += 1,
                (fault, outcome) => panic!(
                    "plan {plan_seed}, request {i} (fault {fault:?}): unexpected {outcome:?}"
                ),
            }
        }

        let stats = core.stats();
        assert_eq!(stats.submitted, n as u64);
        if injected_panics > 0 {
            assert!(stats.model_panics >= 1);
            assert!(stats.worker_restarts >= 1, "worker deaths must be observed");
        }

        // The pool recovered: a fault-free request after the storm is still
        // bitwise-correct against a fresh sequential reference.
        let clean_seed = (10_000..20_000)
            .find(|&s| plan.fault_for(s) == Fault::None)
            .expect("a fault-free seed exists");
        let image = test_image(99);
        let want = sequential_reports(&engine, std::slice::from_ref(&image), &[clean_seed]);
        let response = core
            .infer(InferenceRequest::seeded(image, clean_seed))
            .expect("pool serves after the storm");
        assert_eq!(response.result.logits, want[0].logits);
        assert_eq!(response.result.traces, want[0].traces);
        core.shutdown();
    }
}
