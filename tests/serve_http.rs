//! End-to-end coverage of the HTTP/1.1 shim over a real engine: JSON and
//! binary inference round trips, the stats and health endpoints, status
//! mapping for malformed bodies, and keep-alive reuse — all over a loopback
//! socket on an ephemeral port.

use snn::core::encoding::Encoder;
use snn::core::network::{vgg9, Vgg9Config};
use snn::core::tensor::Tensor;
use snn::serve::protocol::{decode_frame_response, encode_frame_request};
use snn::serve::{FaultPlan, HttpOptions, HttpServer, InferenceRequest, ServeConfig, ServeCore};
use snn::{Engine, Precision};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn serve_engine() -> HttpServer<Engine> {
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::direct(2))
        .precision(Precision::Int4)
        .hardware_allocation("http-test", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .threads(1)
        .build()
        .unwrap();
    let core = ServeCore::start(
        engine,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    HttpServer::bind(core, "127.0.0.1:0").unwrap()
}

fn test_image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], move |p| {
        (((p + 97 * i) as f32) * 0.013).sin().abs()
    })
}

/// Minimal HTTP client: one request over a fresh (or given) connection.
fn http_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> (u16, Vec<u8>) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();

    // Read the response head.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    (status, body)
}

fn json_body(image: &Tensor, seed: u64) -> Vec<u8> {
    let data: Vec<String> = image.as_slice().iter().map(|v| format!("{v}")).collect();
    let shape: Vec<String> = image.shape().iter().map(|d| d.to_string()).collect();
    format!(
        "{{\"shape\": [{}], \"data\": [{}], \"seed\": {seed}}}",
        shape.join(","),
        data.join(",")
    )
    .into_bytes()
}

#[test]
fn json_inference_over_http_matches_run_seeded() {
    let server = serve_engine();
    let image = test_image(1);
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::direct(2))
        .precision(Precision::Int4)
        .hardware_allocation("http-test", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .build()
        .unwrap();
    let want = engine.session().run_seeded(&image, 5).unwrap();

    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        &json_body(&image, 5),
    );
    assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains(&format!("\"prediction\":{}", want.prediction)),
        "got: {text}"
    );
    assert!(text.contains("\"latency_ms\":"), "got: {text}");
    assert!(text.contains("\"batch_size\":"), "got: {text}");

    // Keep-alive: the same connection serves a second request.
    let (status2, _) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        &json_body(&image, 5),
    );
    assert_eq!(status2, 200);
    server.shutdown();
}

#[test]
fn binary_inference_over_http_roundtrips() {
    let server = serve_engine();
    let image = test_image(2);
    let frame = encode_frame_request(&InferenceRequest::seeded(image.clone(), 11));
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/octet-stream",
        &frame,
    );
    assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));
    let response = decode_frame_response(&body).expect("binary response decodes");
    assert_eq!(response.status, 0);
    assert_eq!(response.logits.len(), 10);
    assert_eq!(response.timesteps, 2);
    assert!(response.hardware.is_some());
    assert!(response.batch_size >= 1);
    server.shutdown();
}

#[test]
fn malformed_bodies_map_to_400_and_health_stats_respond() {
    let server = serve_engine();
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        b"{\"shape\": [2], \"data\": [1.0]}",
    );
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("error"));

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, _) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/octet-stream",
        b"XXXXgarbage",
    );
    assert_eq!(status, 400);

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, body) = http_roundtrip(&mut conn, "GET", "/v1/healthz", "text/plain", b"");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok");

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, body) = http_roundtrip(&mut conn, "GET", "/v1/stats", "text/plain", b"");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"submitted\""), "got: {text}");
    assert!(text.contains("\"latency_p99_us\""), "got: {text}");

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, _) = http_roundtrip(&mut conn, "GET", "/v1/nope", "text/plain", b"");
    assert_eq!(status, 404);

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, _) = http_roundtrip(&mut conn, "DELETE", "/v1/infer", "text/plain", b"");
    assert_eq!(status, 405);
    server.shutdown();
}

/// Like [`http_roundtrip`] but also returns the raw response head, for
/// asserting on headers like `Retry-After`.
fn http_roundtrip_with_head(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> (u16, String, Vec<u8>) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();
    read_response(stream)
}

/// Reads one HTTP response (head + Content-Length body) off the stream.
fn read_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    (status, head, body)
}

/// A model whose every batch takes `delay` — for driving the server into
/// overload and deadline territory without a real engine.
struct SlowModel {
    delay: Duration,
}

struct SlowRunner {
    delay: Duration,
}

impl snn::serve::ModelRunner for SlowRunner {
    fn run_batch(
        &mut self,
        requests: Vec<InferenceRequest>,
    ) -> Vec<Result<snn::serve::InferenceResult, snn::core::SnnError>> {
        std::thread::sleep(self.delay);
        requests
            .into_iter()
            .map(|r| {
                Ok(snn::serve::InferenceResult::from_logits(vec![
                    r.seed as f32,
                ]))
            })
            .collect()
    }
}

impl snn::serve::ServeModel for SlowModel {
    type Runner = SlowRunner;

    fn runner(&self) -> SlowRunner {
        SlowRunner { delay: self.delay }
    }
}

fn slow_server(delay_ms: u64, options: HttpOptions) -> HttpServer<SlowModel> {
    let core = ServeCore::start(
        SlowModel {
            delay: Duration::from_millis(delay_ms),
        },
        ServeConfig {
            max_batch: 1,
            max_delay: Duration::from_millis(1),
            queue_capacity: 2,
            high_water: Some(1),
            workers: Some(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    HttpServer::bind_with_options(core, "127.0.0.1:0", options).unwrap()
}

/// Regression: a client that connects, sends half a request head, and then
/// stalls must not pin a connection thread forever — the server answers
/// 408 after `header_timeout` and closes.
#[test]
fn stalled_socket_gets_408_not_a_pinned_thread() {
    let server = slow_server(
        1,
        HttpOptions {
            header_timeout: Duration::from_millis(200),
            ..HttpOptions::default()
        },
    );
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // First bytes arrive, then nothing: the head never completes.
    conn.write_all(b"POST /v1/infer HTTP/1.1\r\nHost: t")
        .unwrap();
    conn.flush().unwrap();
    let (status, _head, _body) = read_response(&mut conn);
    assert_eq!(status, 408);
    server.shutdown();
}

/// A declared body beyond `max_body` is refused with 413 before the server
/// reads (or allocates) any of it.
#[test]
fn oversized_declared_body_is_413() {
    let server = slow_server(
        1,
        HttpOptions {
            max_body: 1024,
            ..HttpOptions::default()
        },
    );
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(
        b"POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 10000000\r\n\r\n",
    )
    .unwrap();
    conn.flush().unwrap();
    let (status, _head, _body) = read_response(&mut conn);
    assert_eq!(status, 413);
    server.shutdown();
}

/// A request head beyond `max_head` is refused with 413.
#[test]
fn oversized_request_head_is_413() {
    let server = slow_server(
        1,
        HttpOptions {
            max_head: 512,
            ..HttpOptions::default()
        },
    );
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let padding = "x".repeat(2048);
    // The server may answer while we are still writing; ignore write errors
    // past that point and go read the verdict.
    let _ = conn.write_all(
        format!("POST /v1/infer HTTP/1.1\r\nHost: t\r\nX-Padding: {padding}\r\n").as_bytes(),
    );
    let _ = conn.flush();
    let (status, _head, _body) = read_response(&mut conn);
    assert_eq!(status, 413);
    server.shutdown();
}

/// Overload over the wire: a burst beyond the queue's high-water mark gets
/// 503 with a `Retry-After` hint a well-behaved client can honour.
#[test]
fn overload_responds_503_with_retry_after() {
    let server = slow_server(50, HttpOptions::default());
    let addr = server.local_addr();
    let workers: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).unwrap();
                conn.set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                http_roundtrip_with_head(
                    &mut conn,
                    "POST",
                    "/v1/infer",
                    "application/json",
                    format!("{{\"shape\": [1], \"data\": [0.5], \"seed\": {i}}}").as_bytes(),
                )
            })
        })
        .collect();
    let mut shed = 0;
    for worker in workers {
        let (status, head, _body) = worker.join().unwrap();
        match status {
            200 => {}
            503 => {
                shed += 1;
                assert!(
                    head.lines()
                        .any(|l| { l.to_ascii_lowercase().starts_with("retry-after:") }),
                    "503 must carry Retry-After, head:\n{head}"
                );
            }
            other => panic!("unexpected status {other}, head:\n{head}"),
        }
    }
    assert!(
        shed >= 1,
        "a 6-deep burst into a 1-high-water queue with 50 ms batches must shed"
    );
    server.shutdown();
}

/// A wire deadline the queue cannot meet maps to 504 with a computed
/// `Retry-After`; the same request without a deadline is just queued.
#[test]
fn hopeless_wire_deadline_is_504() {
    let server = slow_server(20, HttpOptions::default());
    let addr = server.local_addr();

    // Warm the service-time estimator past its threshold.
    for i in 0..20 {
        let mut conn = TcpStream::connect(addr).unwrap();
        let (status, _head, _body) = http_roundtrip_with_head(
            &mut conn,
            "POST",
            "/v1/infer",
            "application/json",
            format!("{{\"shape\": [1], \"data\": [0.5], \"seed\": {i}}}").as_bytes(),
        );
        assert_eq!(status, 200);
    }

    // Occupy the worker and the queue, then ask for 1 ms.
    let blocker = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        http_roundtrip_with_head(
            &mut conn,
            "POST",
            "/v1/infer",
            "application/json",
            b"{\"shape\": [1], \"data\": [0.5], \"seed\": 100}",
        )
    });
    std::thread::sleep(Duration::from_millis(5));
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let (status, head, body) = http_roundtrip_with_head(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        b"{\"shape\": [1], \"data\": [0.5], \"seed\": 101, \"deadline_us\": 1000}",
    );
    // 504 either way: rejected at admission (DeadlineUnmeetable, with
    // Retry-After) or expired at dequeue (DeadlineExceeded).
    assert_eq!(status, 504, "body: {}", String::from_utf8_lossy(&body));
    if String::from_utf8_lossy(&body).contains("unmeetable") {
        assert!(
            head.lines()
                .any(|l| l.to_ascii_lowercase().starts_with("retry-after:")),
            "admission rejection must carry Retry-After, head:\n{head}"
        );
    }
    let (status, _head, _body) = blocker.join().unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

/// The deterministic connection-drop hook: with `drop_rate` 1.0 every
/// inference connection is severed before a response; the health endpoint
/// (not under chaos) still answers, proving the server itself survived.
#[test]
fn chaos_connection_drops_sever_infer_but_not_the_server() {
    let plan = FaultPlan::new(42).with_drop_rate(1.0);
    let server = slow_server(
        1,
        HttpOptions {
            chaos_drop: Some(plan.connection_chaos()),
            ..HttpOptions::default()
        },
    );
    let addr = server.local_addr();
    for _ in 0..3 {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        conn.write_all(
            b"POST /v1/infer HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 40\r\n\r\n{\"shape\": [1], \"data\": [0.5], \"seed\"",
        )
        .unwrap();
        conn.write_all(b": 1}").unwrap();
        conn.flush().unwrap();
        // The injected drop closes the connection with zero response bytes.
        let mut buf = [0u8; 64];
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(
            n,
            0,
            "dropped connection must yield EOF, got: {}",
            String::from_utf8_lossy(&buf[..n])
        );
    }
    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, _head, body) =
        http_roundtrip_with_head(&mut conn, "GET", "/v1/healthz", "text/plain", b"");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok");
    server.shutdown();
}

#[test]
fn model_shape_errors_map_to_422() {
    let server = serve_engine();
    // Wire-legal body, wrong tensor shape for the VGG-9 engine: the model
    // rejects it, mapped to 422 (not 400 — the request *parsed* fine).
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        b"{\"shape\": [2, 2], \"data\": [1.0, 2.0, 3.0, 4.0]}",
    );
    assert_eq!(status, 422, "body: {}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("model error"));
    server.shutdown();
}
