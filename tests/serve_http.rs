//! End-to-end coverage of the HTTP/1.1 shim over a real engine: JSON and
//! binary inference round trips, the stats and health endpoints, status
//! mapping for malformed bodies, and keep-alive reuse — all over a loopback
//! socket on an ephemeral port.

use snn::core::encoding::Encoder;
use snn::core::network::{vgg9, Vgg9Config};
use snn::core::tensor::Tensor;
use snn::serve::protocol::{decode_frame_response, encode_frame_request};
use snn::serve::{HttpServer, InferenceRequest, ServeConfig, ServeCore};
use snn::{Engine, Precision};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn serve_engine() -> HttpServer<Engine> {
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::direct(2))
        .precision(Precision::Int4)
        .hardware_allocation("http-test", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .threads(1)
        .build()
        .unwrap();
    let core = ServeCore::start(
        engine,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    HttpServer::bind(core, "127.0.0.1:0").unwrap()
}

fn test_image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], move |p| {
        (((p + 97 * i) as f32) * 0.013).sin().abs()
    })
}

/// Minimal HTTP client: one request over a fresh (or given) connection.
fn http_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> (u16, Vec<u8>) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();

    // Read the response head.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    (status, body)
}

fn json_body(image: &Tensor, seed: u64) -> Vec<u8> {
    let data: Vec<String> = image.as_slice().iter().map(|v| format!("{v}")).collect();
    let shape: Vec<String> = image.shape().iter().map(|d| d.to_string()).collect();
    format!(
        "{{\"shape\": [{}], \"data\": [{}], \"seed\": {seed}}}",
        shape.join(","),
        data.join(",")
    )
    .into_bytes()
}

#[test]
fn json_inference_over_http_matches_run_seeded() {
    let server = serve_engine();
    let image = test_image(1);
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::direct(2))
        .precision(Precision::Int4)
        .hardware_allocation("http-test", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .build()
        .unwrap();
    let want = engine.session().run_seeded(&image, 5).unwrap();

    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        &json_body(&image, 5),
    );
    assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains(&format!("\"prediction\":{}", want.prediction)),
        "got: {text}"
    );
    assert!(text.contains("\"latency_ms\":"), "got: {text}");
    assert!(text.contains("\"batch_size\":"), "got: {text}");

    // Keep-alive: the same connection serves a second request.
    let (status2, _) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        &json_body(&image, 5),
    );
    assert_eq!(status2, 200);
    server.shutdown();
}

#[test]
fn binary_inference_over_http_roundtrips() {
    let server = serve_engine();
    let image = test_image(2);
    let frame = encode_frame_request(&InferenceRequest::seeded(image.clone(), 11));
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/octet-stream",
        &frame,
    );
    assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));
    let response = decode_frame_response(&body).expect("binary response decodes");
    assert_eq!(response.status, 0);
    assert_eq!(response.logits.len(), 10);
    assert_eq!(response.timesteps, 2);
    assert!(response.hardware.is_some());
    assert!(response.batch_size >= 1);
    server.shutdown();
}

#[test]
fn malformed_bodies_map_to_400_and_health_stats_respond() {
    let server = serve_engine();
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        b"{\"shape\": [2], \"data\": [1.0]}",
    );
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("error"));

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, _) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/octet-stream",
        b"XXXXgarbage",
    );
    assert_eq!(status, 400);

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, body) = http_roundtrip(&mut conn, "GET", "/v1/healthz", "text/plain", b"");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok");

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, body) = http_roundtrip(&mut conn, "GET", "/v1/stats", "text/plain", b"");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"submitted\""), "got: {text}");
    assert!(text.contains("\"latency_p99_us\""), "got: {text}");

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, _) = http_roundtrip(&mut conn, "GET", "/v1/nope", "text/plain", b"");
    assert_eq!(status, 404);

    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, _) = http_roundtrip(&mut conn, "DELETE", "/v1/infer", "text/plain", b"");
    assert_eq!(status, 405);
    server.shutdown();
}

#[test]
fn model_shape_errors_map_to_422() {
    let server = serve_engine();
    // Wire-legal body, wrong tensor shape for the VGG-9 engine: the model
    // rejects it, mapped to 422 (not 400 — the request *parsed* fine).
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        b"{\"shape\": [2, 2], \"data\": [1.0, 2.0, 3.0, 4.0]}",
    );
    assert_eq!(status, 422, "body: {}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("model error"));
    server.shutdown();
}
