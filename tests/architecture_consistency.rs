//! Integration tests checking that the accelerator's functional models are
//! bit-true against the algorithmic reference in `snn-core`, and that the
//! coding-scheme / scaling trends reported by the paper hold end to end
//! through the `Engine`/`Session` facade.

use snn::accel::dense_core::DenseCore;
use snn::accel::dse::allocate_balanced;
use snn::accel::sparse_core::SparseCore;
use snn::accel::workload::from_traces;
use snn::accel::HybridAccelerator;
use snn::core::network::{vgg9, Layer, Vgg9Config};
use snn::core::spike::SpikeVolume;
use snn::{Encoder, Engine, HwConfig, PerfScale, Precision, Tensor};

fn small_image() -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.019).sin().abs())
}

#[test]
fn dense_core_reproduces_the_networks_first_layer_spikes() {
    let network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = small_image();
    let encoder = Encoder::paper_direct();
    let out = network.run(&image, &encoder).unwrap();

    // Re-execute the first layer on the dense core and compare spike counts
    // per timestep against the network trace. BN is identity at init, so the
    // folded and unfolded networks agree.
    let Layer::Conv { conv, .. } = &network.layers()[0] else {
        panic!("first layer must be a convolution");
    };
    let frames = encoder.encode(&image, 0).unwrap();
    let (volume, timing) = DenseCore::new(2)
        .run(conv, network.lif_params(), &frames)
        .unwrap();
    assert!(timing.total_cycles > 0);
    for (t, &expected) in out.traces[0].output_spikes.iter().enumerate() {
        assert_eq!(volume.spikes_at_timestep(t) as u64, expected);
    }
}

#[test]
fn sparse_core_reproduces_the_second_layer_spikes() {
    let network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = small_image();
    let out = network.run(&image, &Encoder::paper_direct()).unwrap();

    // Feed the recorded spike output of CONV1_1 into a sparse core running
    // CONV1_2 and check that it reproduces the recorded CONV1_2 spikes.
    let input_volume = out.traces[0].spikes.clone().expect("conv trace has spikes");
    let Layer::Conv { conv, .. } = &network.layers()[1] else {
        panic!("second layer must be a convolution");
    };
    let (volume, _) = SparseCore::new(4, 32)
        .run_conv(conv, network.lif_params(), &input_volume)
        .unwrap();
    for (t, &expected) in out.traces[1].output_spikes.iter().enumerate() {
        assert_eq!(volume.spikes_at_timestep(t) as u64, expected);
    }
}

#[test]
fn direct_coding_beats_rate_coding_on_energy() {
    // The Table II trend: with far fewer timesteps, direct coding consumes
    // much less energy than rate coding on the same network.
    let image = small_image();

    let direct_engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::direct(2))
        .precision(Precision::Int4)
        .hardware_allocation("direct", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
        .build()
        .unwrap();
    let rate_hw =
        HwConfig::from_allocation("rate", Precision::Int4, &[1, 1, 8, 4, 18, 6, 6, 20, 2, 1])
            .unwrap()
            .without_dense_core();
    let rate_engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::rate(20))
        .precision(Precision::Int4)
        .hardware(rate_hw)
        .build()
        .unwrap();

    let direct = direct_engine.session().run(&image).unwrap();
    let rate = rate_engine.session().run_seeded(&image, 3).unwrap();

    assert!(
        rate.record.total_spikes() > direct.record.total_spikes(),
        "rate coding at 20 timesteps should emit more spikes than direct at 2"
    );
    assert!(
        rate.hardware.dynamic_energy_mj > 2.0 * direct.hardware.dynamic_energy_mj,
        "rate coding should cost several times more energy (got {:.4} vs {:.4} mJ)",
        rate.hardware.dynamic_energy_mj,
        direct.hardware.dynamic_energy_mj
    );
    assert!(rate.hardware.latency_ms > direct.hardware.latency_ms);
}

#[test]
fn perf_scaling_improves_throughput_and_energy() {
    // The Fig. 4 trend: perf2/perf4 scale up resources, which improves both
    // throughput and (because latency shrinks faster than power grows)
    // per-image energy. One engine records the workload; scaled engines share
    // the weights and re-estimate the same traces under bigger hardware.
    let base = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .precision(Precision::Int4)
        .hardware_allocation("scaled-LW", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
        .build()
        .unwrap();
    let out = base.session().run(&small_image()).unwrap();

    let mut reports = Vec::new();
    for scale in PerfScale::all() {
        let mut cfg = HwConfig::from_allocation(
            format!("scaled-{scale}"),
            Precision::Int4,
            &[1, 8, 4, 18, 6, 6, 20, 2, 1],
        )
        .unwrap();
        let f = scale.factor();
        cfg.dense_rows *= f;
        for nc in &mut cfg.neural_cores {
            *nc *= f;
        }
        reports.push(
            base.with_hardware(cfg)
                .unwrap()
                .plan()
                .estimate(&out.traces)
                .unwrap(),
        );
    }
    // Latency shrinks strictly with more cores. Throughput is bounded by the
    // bottleneck layer, whose ECU compression scan (input_bits / chunk_bits +
    // events) does not parallelise across neural cores — at this small scale
    // it saturates, so throughput is only guaranteed not to regress.
    assert!(reports[1].latency_ms < reports[0].latency_ms);
    assert!(reports[2].latency_ms < reports[1].latency_ms);
    assert!(reports[1].throughput_fps >= reports[0].throughput_fps);
    assert!(reports[2].throughput_fps >= reports[1].throughput_fps);
}

#[test]
fn dse_allocation_balances_the_network() {
    let network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = small_image();
    let out = network.run(&image, &Encoder::paper_direct()).unwrap();
    let workloads = from_traces(&out.traces).unwrap();
    let uniform = allocate_balanced(&workloads, workloads.len()).unwrap();
    let balanced = allocate_balanced(&workloads, 64).unwrap();
    assert!(balanced.bottleneck_cycles() <= uniform.bottleneck_cycles());
    assert!(balanced.imbalance <= uniform.imbalance);
    // Converting the allocation into a hardware configuration must produce a
    // valid accelerator.
    let mut allocation = vec![1usize];
    allocation.extend(balanced.cores.iter().skip(1));
    let cfg = HwConfig::from_allocation("dse", Precision::Int4, &allocation).unwrap();
    assert!(HybridAccelerator::new(&network, cfg).is_ok());
}

#[test]
fn spike_volume_roundtrips_through_the_whole_stack() {
    // SpikeVolume built by the network is consumable by the sparse core and
    // keeps its counts through the accelerator estimate.
    let network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let out = network
        .run(&small_image(), &Encoder::paper_direct())
        .unwrap();
    for trace in &out.traces {
        if let Some(volume) = &trace.spikes {
            let total: u64 = trace.output_spikes.iter().sum();
            assert_eq!(volume.total_spikes() as u64, total);
            assert_eq!(volume.timesteps(), out.timesteps);
        }
    }
    // An empty volume stays empty through OR-pooling semantics.
    let empty = SpikeVolume::new(2, 4, 8, 8);
    assert_eq!(empty.total_spikes(), 0);
}
