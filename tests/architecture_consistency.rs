//! Integration tests checking that the accelerator's functional models are
//! bit-true against the algorithmic reference in `snn-core`, and that the
//! coding-scheme / scaling trends reported by the paper hold end to end.

use snn_dse::accel::config::{HwConfig, PerfScale};
use snn_dse::accel::dense_core::DenseCore;
use snn_dse::accel::dse::allocate_balanced;
use snn_dse::accel::sparse_core::SparseCore;
use snn_dse::accel::workload::from_traces;
use snn_dse::accel::HybridAccelerator;
use snn_dse::core::encoding::Encoder;
use snn_dse::core::network::{vgg9, Layer, Vgg9Config};
use snn_dse::core::quant::Precision;
use snn_dse::core::spike::SpikeVolume;
use snn_dse::core::tensor::Tensor;

fn small_image() -> Tensor {
    Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.019).sin().abs())
}

#[test]
fn dense_core_reproduces_the_networks_first_layer_spikes() {
    let mut network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = small_image();
    let encoder = Encoder::paper_direct();
    let out = network.run(&image, &encoder).unwrap();

    // Re-execute the first layer on the dense core and compare spike counts
    // per timestep against the network trace. BN is identity at init, so the
    // folded and unfolded networks agree.
    let Layer::Conv { conv, .. } = &network.layers()[0] else {
        panic!("first layer must be a convolution");
    };
    let frames = encoder.encode(&image, 0).unwrap();
    let (volume, timing) = DenseCore::new(2)
        .run(conv, network.lif_params(), &frames)
        .unwrap();
    assert!(timing.total_cycles > 0);
    for (t, &expected) in out.traces[0].output_spikes.iter().enumerate() {
        assert_eq!(volume.spikes_at_timestep(t) as u64, expected);
    }
}

#[test]
fn sparse_core_reproduces_the_second_layer_spikes() {
    let mut network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = small_image();
    let out = network.run(&image, &Encoder::paper_direct()).unwrap();

    // Feed the recorded spike output of CONV1_1 into a sparse core running
    // CONV1_2 and check that it reproduces the recorded CONV1_2 spikes.
    let input_volume = out.traces[0].spikes.clone().expect("conv trace has spikes");
    let Layer::Conv { conv, .. } = &network.layers()[1] else {
        panic!("second layer must be a convolution");
    };
    let (volume, _) = SparseCore::new(4, 32)
        .run_conv(conv, network.lif_params(), &input_volume)
        .unwrap();
    for (t, &expected) in out.traces[1].output_spikes.iter().enumerate() {
        assert_eq!(volume.spikes_at_timestep(t) as u64, expected);
    }
}

#[test]
fn direct_coding_beats_rate_coding_on_energy() {
    // The Table II trend: with far fewer timesteps, direct coding consumes
    // much less energy than rate coding on the same network.
    let mut network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    network.apply_precision(Precision::Int4).unwrap();
    let image = small_image();

    let direct = network.run(&image, &Encoder::direct(2)).unwrap();
    let rate = network.run_seeded(&image, &Encoder::rate(20), 3).unwrap();

    let direct_hw = HwConfig::from_allocation(
        "direct",
        Precision::Int4,
        &[1, 8, 4, 18, 6, 6, 20, 2, 1],
    )
    .unwrap();
    let rate_hw = HwConfig::from_allocation(
        "rate",
        Precision::Int4,
        &[1, 1, 8, 4, 18, 6, 6, 20, 2, 1],
    )
    .unwrap()
    .without_dense_core();

    let direct_report = HybridAccelerator::new(&network, direct_hw)
        .unwrap()
        .estimate(&direct.traces)
        .unwrap();
    let rate_report = HybridAccelerator::new(&network, rate_hw)
        .unwrap()
        .estimate(&rate.traces)
        .unwrap();

    assert!(
        rate.record.total_spikes() > direct.record.total_spikes(),
        "rate coding at 20 timesteps should emit more spikes than direct at 2"
    );
    assert!(
        rate_report.dynamic_energy_mj > 2.0 * direct_report.dynamic_energy_mj,
        "rate coding should cost several times more energy (got {:.4} vs {:.4} mJ)",
        rate_report.dynamic_energy_mj,
        direct_report.dynamic_energy_mj
    );
    assert!(rate_report.latency_ms > direct_report.latency_ms);
}

#[test]
fn perf_scaling_improves_throughput_and_energy() {
    // The Fig. 4 trend: perf2/perf4 scale up resources, which improves both
    // throughput and (because latency shrinks faster than power grows)
    // per-image energy.
    let mut network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = small_image();
    let out = network.run(&image, &Encoder::paper_direct()).unwrap();

    let mut reports = Vec::new();
    for scale in PerfScale::all() {
        let mut cfg = HwConfig::from_allocation(
            format!("scaled-{scale}"),
            Precision::Int4,
            &[1, 8, 4, 18, 6, 6, 20, 2, 1],
        )
        .unwrap();
        let f = scale.factor();
        cfg.dense_rows *= f;
        for nc in &mut cfg.neural_cores {
            *nc *= f;
        }
        reports.push(
            HybridAccelerator::new(&network, cfg)
                .unwrap()
                .estimate(&out.traces)
                .unwrap(),
        );
    }
    assert!(reports[1].throughput_fps > reports[0].throughput_fps);
    assert!(reports[2].throughput_fps > reports[1].throughput_fps);
    assert!(reports[2].latency_ms < reports[0].latency_ms);
}

#[test]
fn dse_allocation_balances_the_network() {
    let mut network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let image = small_image();
    let out = network.run(&image, &Encoder::paper_direct()).unwrap();
    let workloads = from_traces(&out.traces).unwrap();
    let uniform = allocate_balanced(&workloads, workloads.len()).unwrap();
    let balanced = allocate_balanced(&workloads, 64).unwrap();
    assert!(balanced.bottleneck_cycles() <= uniform.bottleneck_cycles());
    assert!(balanced.imbalance <= uniform.imbalance);
    // Converting the allocation into a hardware configuration must produce a
    // valid accelerator.
    let mut allocation = vec![1usize];
    allocation.extend(balanced.cores.iter().skip(1));
    let cfg = HwConfig::from_allocation("dse", Precision::Int4, &allocation).unwrap();
    assert!(HybridAccelerator::new(&network, cfg).is_ok());
}

#[test]
fn spike_volume_roundtrips_through_the_whole_stack() {
    // SpikeVolume built by the network is consumable by the sparse core and
    // keeps its counts through the accelerator estimate.
    let mut network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let out = network.run(&small_image(), &Encoder::paper_direct()).unwrap();
    for trace in &out.traces {
        if let Some(volume) = &trace.spikes {
            let total: u64 = trace.output_spikes.iter().sum();
            assert_eq!(volume.total_spikes() as u64, total);
            assert_eq!(volume.timesteps(), out.timesteps);
        }
    }
    // An empty volume stays empty through OR-pooling semantics.
    let empty = SpikeVolume::new(2, 4, 8, 8);
    assert_eq!(empty.total_spikes(), 0);
}
