//! End-to-end arm of the spike-word differential harness: the full engine —
//! encoder, LIF populations, word-scan conv/linear/pool kernels, readout —
//! is bitwise deterministic across thread counts, coding schemes and weight
//! precisions. Per-kernel word ≡ index ≡ dense equality lives in
//! `snn-core`'s `spike_words` suite; this test proves the composition: the
//! packed mask words flow through a complete network without perturbing a
//! single output bit, whether one worker or four carry the batch.

use snn::{Encoder, Engine, HwConfig, Precision, Tensor};
use snn_core::network::{vgg9, Vgg9Config};

fn images(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|k| {
            Tensor::from_fn(&[3, 16, 16], move |i| {
                (((i + 389 * k) as f32) * 0.0173).sin().abs()
            })
        })
        .collect()
}

fn engine(threads: usize, encoder: Encoder, precision: Precision) -> Engine {
    let mut builder = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(encoder)
        .precision(precision)
        .threads(threads);
    // Binary-input encoders bypass the dense core, so they take a sparse
    // allocation with an input-layer entry; analog direct coding keeps the
    // dense core for layer 0.
    builder = if encoder.produces_binary_input() {
        builder.hardware(
            HwConfig::from_allocation("words-e2e", precision, &[1, 1, 8, 4, 18, 6, 6, 20, 2, 1])
                .unwrap()
                .without_dense_core(),
        )
    } else {
        builder.hardware_allocation("words-e2e", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
    };
    builder.build().unwrap()
}

#[test]
fn word_scan_inference_is_bitwise_identical_across_threads() {
    let imgs = images(5); // not a multiple of 4: one ragged worker chunk
    for precision in [Precision::Fp32, Precision::Int4] {
        for (name, encoder) in [
            ("direct", Encoder::paper_direct()),
            ("rate", Encoder::rate(6)),
        ] {
            let single = engine(1, encoder, precision)
                .session()
                .run_batch_seeded(&imgs, 11)
                .unwrap();
            let quad = engine(4, encoder, precision)
                .session()
                .run_batch_seeded(&imgs, 11)
                .unwrap();
            for (i, (a, b)) in single.reports.iter().zip(quad.reports.iter()).enumerate() {
                assert_eq!(
                    a.logits, b.logits,
                    "{name}/{precision:?}: logits diverge across threads at image {i}"
                );
                assert_eq!(
                    a.prediction, b.prediction,
                    "{name}/{precision:?}: image {i}"
                );
                assert_eq!(a.record, b.record, "{name}/{precision:?}: spike record {i}");
                assert_eq!(a.traces, b.traces, "{name}/{precision:?}: traces {i}");
            }
        }
    }
}

/// Spike counts reported by the engine come from mask-word popcounts; they
/// must equal the number of ones in the recorded spike trains, and an
/// all-zero image must produce zero input events under direct coding.
#[test]
fn popcount_spike_statistics_are_consistent() {
    let engine = engine(1, Encoder::paper_direct(), Precision::Fp32);
    let report = engine.session().run(&images(1)[0]).unwrap();
    let recorded = report.record.total_spikes();
    let traced: u64 = report.traces.iter().map(|t| t.total_output_spikes()).sum();
    assert_eq!(
        recorded, traced,
        "record vs per-layer trace spike totals disagree"
    );
}
