//! End-to-end registry coverage over the real engine: checkpoint-backed
//! hot-reload through the CRC-verified io path (a corrupted or failing
//! candidate never serves and never interrupts the incumbent — bitwise
//! proven), and the HTTP shim in zoo mode (named-model routing, typed
//! 404s, per-model stats and health payloads) over a loopback socket.

use snn::core::encoding::Encoder;
use snn::core::io::Checkpoint;
use snn::core::network::{vgg9, Vgg9Config};
use snn::core::tensor::Tensor;
use snn::serve::protocol::{decode_frame_response, encode_frame_request};
use snn::serve::{
    HttpServer, InferenceRequest, ModelZoo, ProbeSpec, ServeConfig, ServeError, ZooConfig,
};
use snn::{Engine, Precision, SnnError};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn engine() -> Engine {
    Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::direct(2))
        .precision(Precision::Fp32)
        .hardware_allocation("registry-test", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .threads(1)
        .build()
        .unwrap()
}

fn test_image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], move |p| {
        (((p + 97 * i) as f32) * 0.013).sin().abs()
    })
}

fn zoo_config() -> ZooConfig {
    ZooConfig {
        serve: ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            ..ServeConfig::default()
        },
        probes: vec![ProbeSpec::sanity(test_image(7), 3, 10)],
        ..ZooConfig::default()
    }
}

/// A unique scratch path under the system temp dir.
fn scratch(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("snn-registry-{}-{name}", std::process::id()));
    path
}

/// The acceptance core of the reload pillar: a corrupted checkpoint (CRC
/// trailer catches it), a failing model build, and a golden-probe failure
/// each leave the incumbent serving bitwise-unchanged; a clean reload of
/// the same weights passes the recorded golden probes and swaps in.
#[test]
fn corrupt_or_failing_checkpoint_never_interrupts_the_incumbent() {
    let engine = engine();
    let image = test_image(0);
    let want = engine.session().run_seeded(&image, 9).unwrap();

    let zoo = ModelZoo::new();
    zoo.register("cifar", "v1", engine.clone(), zoo_config())
        .unwrap();
    // Pin v1's exact outputs: every future reload must reproduce them.
    zoo.record_golden("cifar").unwrap();

    let good = scratch("good.ckpt");
    let bad = scratch("bad.ckpt");
    Checkpoint::new(engine.network().clone())
        .save(&good)
        .unwrap();
    let mut bytes = std::fs::read(&good).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&bad, &bytes).unwrap();

    // 1. Silent corruption: refused by the CRC-verified load, typed.
    let build = |c: Checkpoint| engine.with_network(c.network);
    match zoo.load_with("cifar", "v2", &bad, build) {
        Err(ServeError::Model(_)) => {}
        other => panic!("corrupt checkpoint must be a typed model error, got {other:?}"),
    }
    // 2. A build that fails after a clean read.
    let result = zoo.load_with("cifar", "v2", &good, |_| {
        Err::<Engine, _>(SnnError::config("build", "deliberately failing build"))
    });
    assert!(matches!(result, Err(ServeError::Model(_))));

    // Neither attempt interrupted the incumbent: still v1, still bitwise.
    let got = zoo
        .infer(InferenceRequest::seeded(image.clone(), 9))
        .unwrap();
    assert_eq!(got.result.logits, want.logits);
    assert_eq!(got.result.traces, want.traces);
    let stats = zoo.stats();
    assert_eq!(stats.models["cifar"].version, "v1");
    assert_eq!(stats.models["cifar"].validation_failures, 2);
    assert_eq!(stats.models["cifar"].swaps, 0);

    // 3. The clean reload passes the golden probes (bitwise) and swaps in;
    // served results stay bitwise-identical because the weights are.
    zoo.load_with("cifar", "v2", &good, |c| engine.with_network(c.network))
        .unwrap();
    assert_eq!(zoo.stats().models["cifar"].version, "v2");
    let got = zoo.infer(InferenceRequest::seeded(image, 9)).unwrap();
    assert_eq!(got.result.logits, want.logits);
    assert_eq!(zoo.rollback("cifar").unwrap(), "v1");

    zoo.shutdown();
    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(bad);
}

/// Minimal HTTP client: one request over a given connection.
fn http_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> (u16, Vec<u8>) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();

    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    (status, body)
}

fn json_body(image: &Tensor, seed: u64, model: Option<&str>) -> Vec<u8> {
    let data: Vec<String> = image.as_slice().iter().map(|v| format!("{v}")).collect();
    let shape: Vec<String> = image.shape().iter().map(|d| d.to_string()).collect();
    let model = model
        .map(|m| format!(", \"model\": \"{m}\""))
        .unwrap_or_default();
    format!(
        "{{\"shape\": [{}], \"data\": [{}], \"seed\": {seed}{model}}}",
        shape.join(","),
        data.join(",")
    )
    .into_bytes()
}

/// The zoo behind the HTTP shim: named routing on both codecs, typed 404
/// for unknown models, per-model `/v1/stats` sections and the `/healthz`
/// health JSON.
#[test]
fn http_zoo_routes_by_model_and_reports_per_model_state() {
    let engine = engine();
    let image = test_image(2);
    let want = engine.session().run_seeded(&image, 5).unwrap();

    let zoo = ModelZoo::new();
    zoo.register("alpha", "v1", engine.clone(), zoo_config())
        .unwrap();
    zoo.register("beta", "v1", engine.clone(), zoo_config())
        .unwrap();
    let server = HttpServer::bind_zoo(zoo.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // JSON request routed by name; the response carries the health marker.
    let mut conn = TcpStream::connect(addr).unwrap();
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        &json_body(&image, 5, Some("alpha")),
    );
    assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains(&format!("\"prediction\":{}", want.prediction)),
        "got: {text}"
    );
    assert!(text.contains("\"degraded\":false"), "got: {text}");

    // Binary frame routed by name.
    let frame =
        encode_frame_request(&InferenceRequest::seeded(image.clone(), 5).with_model("beta"));
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/octet-stream",
        &frame,
    );
    assert_eq!(status, 200);
    let decoded = decode_frame_response(&body).unwrap();
    assert_eq!(decoded.status, 0);
    assert_eq!(decoded.logits, want.logits);

    // Unknown model: typed 404, connection stays usable.
    let (status, body) = http_roundtrip(
        &mut conn,
        "POST",
        "/v1/infer",
        "application/json",
        &json_body(&image, 5, Some("gamma")),
    );
    assert_eq!(status, 404);
    assert!(String::from_utf8_lossy(&body).contains("gamma"));

    // Per-model stats sections.
    let (status, body) = http_roundtrip(&mut conn, "GET", "/v1/stats", "text/plain", b"");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    for needle in [
        "\"default_model\":\"alpha\"",
        "\"beta\"",
        "\"version\":\"v1\"",
        "\"health\":\"healthy\"",
        "\"submitted\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in {text}");
    }

    // Zoo health JSON on both the bare and versioned paths.
    for path in ["/healthz", "/v1/healthz"] {
        let (status, body) = http_roundtrip(&mut conn, "GET", path, "text/plain", b"");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"status\":\"ok\""), "got: {text}");
        assert!(text.contains("\"alpha\""), "got: {text}");
    }

    server.shutdown();
}
