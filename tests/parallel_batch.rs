//! Bitwise determinism of parallel batched inference: `run_batch` fanned out
//! over scoped worker threads must equal sequential `run_seeded` calls with
//! the same seeds, at every thread count and for both coding schemes.

use snn::{Encoder, Engine, HwConfig, Precision, Tensor};
use snn_core::network::{vgg9, Vgg9Config};

fn images(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|k| {
            Tensor::from_fn(&[3, 16, 16], move |i| {
                (((i + 613 * k) as f32) * 0.0191).sin().abs()
            })
        })
        .collect()
}

fn engine_with_threads(threads: usize, encoder: Encoder) -> Engine {
    let mut builder = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(encoder)
        .precision(Precision::Int4)
        .threads(threads);
    builder = if encoder.produces_binary_input() {
        builder.hardware(
            HwConfig::from_allocation("par", Precision::Int4, &[1, 1, 8, 4, 18, 6, 6, 20, 2, 1])
                .unwrap()
                .without_dense_core(),
        )
    } else {
        builder.hardware_allocation("par", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
    };
    builder.build().unwrap()
}

#[test]
fn parallel_run_batch_is_bitwise_equal_to_sequential_run_seeded() {
    let imgs = images(7); // deliberately not a multiple of the thread count
    let reference = engine_with_threads(1, Encoder::paper_direct());
    let mut ref_session = reference.session();
    let sequential: Vec<_> = imgs
        .iter()
        .enumerate()
        .map(|(i, img)| ref_session.run_seeded(img, i as u64).unwrap())
        .collect();

    for threads in [2, 3, 4, 8] {
        let engine = engine_with_threads(threads, Encoder::paper_direct());
        assert_eq!(engine.threads(), threads);
        let batch = engine.session().run_batch(&imgs).unwrap();
        assert_eq!(batch.len(), imgs.len());
        for (i, (par, seq)) in batch.reports.iter().zip(sequential.iter()).enumerate() {
            assert_eq!(
                par.logits, seq.logits,
                "parallel ({threads} threads) logits diverge at image {i}"
            );
            assert_eq!(par.prediction, seq.prediction);
            assert_eq!(par.record, seq.record);
            assert_eq!(par.traces, seq.traces);
            assert_eq!(par.hardware, seq.hardware);
        }
    }
}

#[test]
fn parallel_run_batch_matches_with_stochastic_rate_coding() {
    let imgs = images(5);
    let sequential = engine_with_threads(1, Encoder::rate(6))
        .session()
        .run_batch_seeded(&imgs, 42)
        .unwrap();
    let parallel = engine_with_threads(4, Encoder::rate(6))
        .session()
        .run_batch_seeded(&imgs, 42)
        .unwrap();
    for (par, seq) in parallel.reports.iter().zip(sequential.reports.iter()) {
        assert_eq!(par.logits, seq.logits);
        assert_eq!(par.traces, seq.traces);
    }
    assert_eq!(
        parallel.total_latency_ms.to_bits(),
        sequential.total_latency_ms.to_bits()
    );
    assert_eq!(
        parallel.total_energy_mj.to_bits(),
        sequential.total_energy_mj.to_bits()
    );
}

#[test]
fn parallel_session_reuses_worker_states_across_batches() {
    let engine = engine_with_threads(3, Encoder::paper_direct());
    let mut session = engine.session();
    let imgs = images(6);
    let first = session.run_batch(&imgs).unwrap();
    let second = session.run_batch(&imgs).unwrap();
    for (a, b) in first.reports.iter().zip(second.reports.iter()) {
        assert_eq!(a.logits, b.logits);
    }
}

#[test]
fn more_threads_than_images_is_fine() {
    let engine = engine_with_threads(16, Encoder::paper_direct());
    let imgs = images(2);
    let batch = engine.session().run_batch(&imgs).unwrap();
    assert_eq!(batch.len(), 2);
    let empty = engine.session().run_batch(&[]).unwrap();
    assert!(empty.is_empty());
}

#[test]
fn builder_threads_clamps_to_one() {
    let engine = engine_with_threads(0, Encoder::paper_direct());
    assert_eq!(engine.threads(), 1);
}

#[test]
fn parallel_batch_error_reports_lowest_failing_image() {
    let engine = engine_with_threads(4, Encoder::paper_direct());
    let mut imgs = images(6);
    imgs[2] = Tensor::zeros(&[3, 8, 8]); // wrong shape
    let err = engine.session().run_batch(&imgs).unwrap_err();
    assert!(err.to_string().contains("input image"), "got: {err}");
}
