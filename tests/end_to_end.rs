//! Cross-crate integration test: dataset → training → quantization →
//! inference → accelerator estimate, the full pipeline behind the paper's
//! experiments, exercised at smoke scale.

use snn_dse::accel::accelerator::HybridAccelerator;
use snn_dse::accel::config::HwConfig;
use snn_dse::core::encoding::Encoder;
use snn_dse::core::network::{vgg9, Vgg9Config};
use snn_dse::core::quant::Precision;
use snn_dse::data::{Dataset, Split, SyntheticConfig, SyntheticDataset};
use snn_dse::train::trainer::{evaluate, TrainConfig, Trainer};

fn tiny_dataset() -> SyntheticDataset {
    SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 16, 8))
}

#[test]
fn train_quantize_infer_and_estimate() {
    let data = tiny_dataset();
    let mut network = vgg9(&Vgg9Config::cifar10_small()).unwrap();

    // Train for one epoch with QAT at int4.
    let mut cfg = TrainConfig::quick_qat(Precision::Int4);
    cfg.max_train_samples = Some(8);
    cfg.batch_size = 4;
    let mut trainer = Trainer::new(cfg);
    let report = trainer.fit(&mut network, &data).unwrap();
    assert!(report.final_loss().is_finite());

    // Deploy at int4 and evaluate.
    network.apply_precision(Precision::Int4).unwrap();
    let eval = evaluate(
        &mut network,
        &data,
        Split::Test,
        &Encoder::paper_direct(),
        Some(4),
    )
    .unwrap();
    assert_eq!(eval.samples, 4);
    assert!(eval.total_spikes > 0, "a trained SNN must emit spikes");

    // Map one inference onto the accelerator.
    let sample = data.sample(Split::Test, 0);
    let out = network.run(&sample.image, &Encoder::paper_direct()).unwrap();
    let hw = HwConfig::from_allocation(
        "e2e-int4",
        Precision::Int4,
        &[1, 8, 4, 18, 6, 6, 20, 2, 1],
    )
    .unwrap();
    let accel = HybridAccelerator::new(&network, hw).unwrap();
    let perf = accel.estimate(&out.traces).unwrap();
    assert_eq!(perf.layers.len(), 9);
    assert!(perf.latency_ms > 0.0);
    assert!(perf.throughput_fps > 0.0);
    assert!(perf.dynamic_energy_mj > 0.0);
    assert!(perf.fits_device);
}

#[test]
fn quantized_deployment_changes_spike_counts_but_not_structure() {
    let data = tiny_dataset();
    let sample = data.sample(Split::Test, 1);
    let mut fp32 = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let mut int4 = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    int4.apply_precision(Precision::Int4).unwrap();

    let out_fp32 = fp32.run(&sample.image, &Encoder::paper_direct()).unwrap();
    let out_int4 = int4.run(&sample.image, &Encoder::paper_direct()).unwrap();
    assert_eq!(out_fp32.traces.len(), out_int4.traces.len());
    assert_eq!(out_fp32.logits.len(), out_int4.logits.len());
    // Quantization perturbs the activity (almost surely), but both runs must
    // produce valid, finite spike statistics.
    assert!(out_fp32.record.total_spikes() > 0);
    assert!(out_int4.record.total_spikes() > 0);
}

#[test]
fn fp32_and_int4_accelerators_rank_as_the_paper_reports() {
    // For identical traces, the int4 hardware must be cheaper in both power
    // and energy — the core co-design claim of the paper.
    let data = tiny_dataset();
    let sample = data.sample(Split::Train, 0);
    let mut network = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let out = network.run(&sample.image, &Encoder::paper_direct()).unwrap();

    let alloc = [1, 8, 4, 18, 6, 6, 20, 2, 1];
    let int4_hw = HwConfig::from_allocation("int4", Precision::Int4, &alloc).unwrap();
    let fp32_hw = HwConfig::from_allocation("fp32", Precision::Fp32, &alloc).unwrap();
    let int4 = HybridAccelerator::new(&network, int4_hw)
        .unwrap()
        .estimate(&out.traces)
        .unwrap();
    let fp32 = HybridAccelerator::new(&network, fp32_hw)
        .unwrap()
        .estimate(&out.traces)
        .unwrap();
    assert!(fp32.total_dynamic_watts > int4.total_dynamic_watts);
    assert!(fp32.dynamic_energy_mj > int4.dynamic_energy_mj);
    // Same schedule, same cycles: latency is identical, only power differs.
    assert!((fp32.latency_ms - int4.latency_ms).abs() < 1e-9);
}
