//! Cross-crate integration test: dataset → training → quantization →
//! inference → accelerator estimate, the full pipeline behind the paper's
//! experiments, exercised at smoke scale through the `Engine`/`Session` API.

use snn::core::network::{vgg9, Vgg9Config};
use snn::data::{Dataset, Split, SyntheticConfig, SyntheticDataset};
use snn::train::trainer::{evaluate, TrainConfig, Trainer};
use snn::{Encoder, Engine, Precision};

fn tiny_dataset() -> SyntheticDataset {
    SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 16, 8))
}

#[test]
fn train_quantize_infer_and_estimate() {
    let data = tiny_dataset();
    let mut network = vgg9(&Vgg9Config::cifar10_small()).unwrap();

    // Train for one epoch with QAT at int4.
    let mut cfg = TrainConfig::quick_qat(Precision::Int4);
    cfg.max_train_samples = Some(8);
    cfg.batch_size = 4;
    let mut trainer = Trainer::new(cfg).unwrap();
    let report = trainer.fit(&mut network, &data).unwrap();
    assert!(report.final_loss().is_finite());

    // Deploy at int4 (for the evaluation helper) and evaluate.
    let mut eval_net = network.clone();
    eval_net.apply_precision(Precision::Int4).unwrap();
    let eval = evaluate(
        &mut eval_net,
        &data,
        Split::Test,
        &Encoder::paper_direct(),
        Some(4),
    )
    .unwrap();
    assert_eq!(eval.samples, 4);
    assert!(eval.total_spikes > 0, "a trained SNN must emit spikes");

    // Wrap the trained weights into an engine (which applies the same int4
    // deployment quantization) and run one fused inference.
    let engine = Engine::builder()
        .network(network)
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("e2e-int4", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
        .build()
        .unwrap();
    let sample = data.sample(Split::Test, 0);
    let perf = engine.session().run(&sample.image).unwrap();
    assert_eq!(perf.hardware.layers.len(), 9);
    assert!(perf.hardware.latency_ms > 0.0);
    assert!(perf.hardware.throughput_fps > 0.0);
    assert!(perf.hardware.dynamic_energy_mj > 0.0);
    assert!(perf.hardware.fits_device);
}

#[test]
fn quantized_deployment_changes_spike_counts_but_not_structure() {
    let data = tiny_dataset();
    let sample = data.sample(Split::Test, 1);
    let alloc: &[usize] = &[1, 8, 4, 18, 6, 6, 20, 2, 1];
    let fp32 = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .precision(Precision::Fp32)
        .hardware_allocation("fp32", alloc)
        .build()
        .unwrap();
    let int4 = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .precision(Precision::Int4)
        .hardware_allocation("int4", alloc)
        .build()
        .unwrap();

    let out_fp32 = fp32.session().run(&sample.image).unwrap();
    let out_int4 = int4.session().run(&sample.image).unwrap();
    assert_eq!(out_fp32.traces.len(), out_int4.traces.len());
    assert_eq!(out_fp32.logits.len(), out_int4.logits.len());
    // Quantization perturbs the activity (almost surely), but both runs must
    // produce valid, finite spike statistics.
    assert!(out_fp32.record.total_spikes() > 0);
    assert!(out_int4.record.total_spikes() > 0);
}

#[test]
fn fp32_and_int4_accelerators_rank_as_the_paper_reports() {
    // For identical traces, the int4 hardware must be cheaper in both power
    // and energy — the core co-design claim of the paper. The fp32 *hardware*
    // is evaluated on the fp32 engine's traces re-estimated under an fp32
    // plan via the facade's trace re-estimation path.
    let data = tiny_dataset();
    let sample = data.sample(Split::Train, 0);
    let alloc: &[usize] = &[1, 8, 4, 18, 6, 6, 20, 2, 1];

    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .hardware_allocation("int4", alloc)
        .precision(Precision::Fp32)
        .build()
        .unwrap();
    let out = engine.session().run(&sample.image).unwrap();

    let int4_hw = snn::HwConfig::from_allocation("int4", Precision::Int4, alloc).unwrap();
    let fp32_hw = snn::HwConfig::from_allocation("fp32", Precision::Fp32, alloc).unwrap();
    let int4 = engine
        .with_hardware(int4_hw)
        .unwrap()
        .plan()
        .estimate(&out.traces)
        .unwrap();
    let fp32 = engine
        .with_hardware(fp32_hw)
        .unwrap()
        .plan()
        .estimate(&out.traces)
        .unwrap();
    assert!(fp32.total_dynamic_watts > int4.total_dynamic_watts);
    assert!(fp32.dynamic_energy_mj > int4.dynamic_energy_mj);
    // Same schedule, same cycles: latency is identical, only power differs.
    assert!((fp32.latency_ms - int4.latency_ms).abs() < 1e-9);
}
