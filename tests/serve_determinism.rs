//! The serving layer's core guarantee: dynamic batching is a scheduling
//! decision, never a numerical one. A request served through
//! `ServeCore<Engine>` — coalesced into whatever batch the load produced —
//! must return bitwise-identical logits, spike traces and hardware estimates
//! to a plain sequential `Session::run_seeded` call with the same image and
//! seed, at every queue depth, batch budget and thread count.

use snn::core::encoding::Encoder;
use snn::core::network::{vgg9, Vgg9Config};
use snn::core::tensor::Tensor;
use snn::serve::{InferenceRequest, ResponseHandle, ServeConfig, ServeCore};
use snn::{Engine, Precision, RunReport};
use std::time::Duration;

fn engine(threads: usize) -> Engine {
    Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::direct(2))
        .precision(Precision::Int4)
        .hardware_allocation("serve-test", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .threads(threads)
        .build()
        .unwrap()
}

fn test_image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], move |p| {
        (((p + 97 * i) as f32) * 0.013).sin().abs()
    })
}

/// Sequential ground truth: one fresh session, `run_seeded` per image.
fn sequential_reports(engine: &Engine, images: &[Tensor], seeds: &[u64]) -> Vec<RunReport> {
    let mut session = engine.session();
    images
        .iter()
        .zip(seeds)
        .map(|(image, &seed)| session.run_seeded(image, seed).unwrap())
        .collect()
}

/// Submits every request up front (forcing coalescing at the configured
/// batch budget), waits for all, and checks each against the sequential
/// reference bitwise.
fn assert_served_matches_sequential(
    engine: &Engine,
    config: ServeConfig,
    n_requests: usize,
    seed_stride: u64,
) {
    let images: Vec<Tensor> = (0..n_requests).map(test_image).collect();
    let seeds: Vec<u64> = (0..n_requests as u64)
        .map(|i| 1000 + i * seed_stride)
        .collect();
    let expected = sequential_reports(engine, &images, &seeds);

    let core = ServeCore::start(engine.clone(), config).unwrap();
    let handles: Vec<ResponseHandle> = images
        .iter()
        .zip(&seeds)
        .map(|(image, &seed)| {
            core.submit(InferenceRequest::seeded(image.clone(), seed))
                .expect("queue sized for the whole test burst")
        })
        .collect();

    let mut coalesced = false;
    for (i, handle) in handles.into_iter().enumerate() {
        let response = handle.wait().expect("request completes");
        let want = &expected[i];
        assert_eq!(
            response.result.logits, want.logits,
            "request {i}: batched logits must be bitwise-identical to run_seeded"
        );
        assert_eq!(response.result.prediction, want.prediction);
        assert_eq!(
            response.result.traces, want.traces,
            "request {i}: spike traces must match bitwise"
        );
        assert_eq!(
            response.result.record.total_spikes(),
            want.record.total_spikes()
        );
        let hardware = response.result.hardware.expect("engine produces estimates");
        assert_eq!(
            hardware, want.hardware,
            "request {i}: hardware estimate must match bitwise"
        );
        coalesced |= response.batch_size > 1;
    }
    let stats = core.stats();
    assert_eq!(stats.completed as usize, n_requests);
    assert_eq!(stats.model_errors, 0);
    if core.stats().peak_batch > 1 {
        assert!(coalesced, "peak_batch > 1 implies some response saw it");
    }
    core.shutdown();
}

#[test]
fn coalesced_batches_match_sequential_single_thread() {
    // Queue depth 12 against max_batch 4: requests are forced to coalesce.
    let engine = engine(1);
    assert_served_matches_sequential(
        &engine,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(20),
            queue_capacity: 64,
            workers: Some(1),
            ..ServeConfig::default()
        },
        12,
        7,
    );
}

#[test]
fn coalesced_batches_match_sequential_multi_thread() {
    // Same workload, engine fanning each coalesced batch over 4 threads.
    let engine = engine(4);
    assert_served_matches_sequential(
        &engine,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
            queue_capacity: 64,
            workers: Some(1),
            ..ServeConfig::default()
        },
        12,
        13,
    );
}

#[test]
fn second_queue_depth_and_worker_count_match_sequential() {
    // A different (depth, batch budget, serve-worker) point: two serve
    // workers racing over the queue, small batches. Completion order varies;
    // results must not.
    let engine = engine(2);
    assert_served_matches_sequential(
        &engine,
        ServeConfig {
            max_batch: 3,
            max_delay: Duration::from_millis(5),
            queue_capacity: 64,
            workers: Some(2),
            ..ServeConfig::default()
        },
        9,
        31,
    );
}

#[test]
fn single_request_equals_batch_of_one() {
    let engine = engine(1);
    let image = test_image(3);
    let mut session = engine.session();
    let want = session.run_seeded(&image, 42).unwrap();

    let core = ServeCore::start(engine.clone(), ServeConfig::default()).unwrap();
    let response = core
        .infer(InferenceRequest::seeded(image, 42))
        .expect("serves");
    assert_eq!(response.result.logits, want.logits);
    assert_eq!(response.result.traces, want.traces);
    assert_eq!(response.result.hardware.unwrap(), want.hardware);
    assert_eq!(response.batch_size, 1);
    core.shutdown();
}

#[test]
fn run_batch_with_seeds_matches_run_seeded() {
    // The facade primitive the serving runner rides on, tested directly:
    // arbitrary (non-contiguous) seeds, parallel batch vs sequential runs.
    let engine = engine(4);
    let images: Vec<Tensor> = (0..6).map(test_image).collect();
    let seeds: Vec<u64> = vec![9, 2, 77, 2, 500, 13];
    let expected = sequential_reports(&engine, &images, &seeds);
    let batch = engine
        .session()
        .run_batch_with_seeds(&images, &seeds)
        .unwrap();
    assert_eq!(batch.reports.len(), expected.len());
    for (got, want) in batch.reports.iter().zip(&expected) {
        assert_eq!(got.logits, want.logits);
        assert_eq!(got.traces, want.traces);
        assert_eq!(got.hardware, want.hardware);
    }
    // Mismatched lengths are a config error, not a panic.
    assert!(engine
        .session()
        .run_batch_with_seeds(&images, &seeds[..3])
        .is_err());
}
