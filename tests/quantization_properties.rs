//! Cross-crate property tests of the quantization path: quantized networks
//! must remain functional, their storage must shrink as the paper claims, and
//! the accelerator's area/power models must order precisions consistently.

use proptest::prelude::*;
use snn::accel::config::HwConfig;
use snn::accel::resources::estimate_layers;
use snn::core::encoding::Encoder;
use snn::core::layers::Conv2d;
use snn::core::network::{vgg9, Vgg9Config};
use snn::core::quant::{fake_quantize, Precision, QuantizedTensor};
use snn::core::tensor::Tensor;

#[test]
fn quantized_network_storage_shrinks_by_the_bit_ratio() {
    let net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    let mut fp32_bits = 0u64;
    let mut int4_bits = 0u64;
    for layer in net.layers() {
        if let snn::core::network::Layer::Conv { conv, .. } = layer {
            fp32_bits += conv.storage_bits(Precision::Fp32);
            int4_bits += conv.storage_bits(Precision::Int4);
        }
    }
    assert_eq!(fp32_bits, 8 * int4_bits);
}

#[test]
fn quantized_inference_stays_close_to_fp32_on_first_layer_currents() {
    // The int4 convolution's output currents must stay within the
    // quantization error bound of the fp32 currents: |Δ| ≤ taps × scale/2.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let conv = Conv2d::with_kaiming_init(3, 8, 3, 1, 1, &mut rng).unwrap();
    let quantized = conv.to_precision(Precision::Int4).unwrap();
    let input = Tensor::from_fn(&[3, 8, 8], |i| ((i as f32) * 0.021).sin().abs());
    let a = conv.forward(&input).unwrap();
    let b = quantized.forward(&input).unwrap();
    let scale = QuantizedTensor::quantize(conv.weight(), Precision::Int4)
        .unwrap()
        .params()
        .scale;
    let bound = 27.0 * scale / 2.0 + 1e-4;
    for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
        assert!(
            (x - y).abs() <= bound,
            "divergence {x} vs {y} exceeds bound {bound}"
        );
    }
}

#[test]
fn resource_model_orders_precisions_monotonically() {
    let geometry = vgg9(&Vgg9Config::cifar10_small())
        .unwrap()
        .geometry()
        .unwrap();
    let alloc = [1, 4, 2, 4, 2, 4, 4, 2, 1];
    let mut previous_blocks = u64::MAX;
    for precision in [Precision::Fp32, Precision::Int8, Precision::Int4] {
        let cfg = HwConfig::from_allocation("prop", precision, &alloc).unwrap();
        let est = estimate_layers(&geometry, &cfg, 2).unwrap();
        let blocks = est.total_bram() + est.total_uram();
        assert!(
            blocks <= previous_blocks,
            "{precision:?} should not need more memory blocks than the previous precision"
        );
        previous_blocks = blocks;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fake-quantization keeps every weight on the symmetric grid, so no
    /// quantized magnitude can exceed the original maximum magnitude.
    #[test]
    fn fake_quantization_bounds_weights(seed in 0_u64..500) {
        let values: Vec<f32> = (0..64).map(|i| ((i as f32 + seed as f32) * 0.173).sin()).collect();
        let t = Tensor::from_vec(values, &[64]).unwrap();
        let q = fake_quantize(&t, Precision::Int4).unwrap();
        let max_abs = t.as_slice().iter().fold(0.0_f32, |a, &x| a.max(x.abs()));
        prop_assert!(q.as_slice().iter().all(|&x| x.abs() <= max_abs + 1e-5));
    }

    /// A quantized network produces finite logits for any bounded input.
    #[test]
    fn quantized_network_is_total(pixel in 0.0_f32..1.0) {
        let mut net = vgg9(&Vgg9Config::cifar10_small()).unwrap();
        net.apply_precision(Precision::Int4).unwrap();
        let image = Tensor::full(&[3, 16, 16], pixel);
        let out = net.run(&image, &Encoder::direct(1)).unwrap();
        prop_assert!(out.logits.iter().all(|l| l.is_finite()));
        prop_assert!(out.prediction < 10);
    }
}
