//! Integration tests of the unified `Engine`/`Session` execution API:
//! builder validation against the network geometry, and bitwise determinism
//! of batched inference versus sequential low-level runs.

use snn::core::network::{vgg9, RunState, Vgg9Config};
use snn::{Encoder, Engine, HwConfig, PerfScale, Precision, Tensor};

fn images(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|k| {
            Tensor::from_fn(&[3, 16, 16], move |i| {
                (((i + 977 * k) as f32) * 0.0173).sin().abs()
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

#[test]
fn build_without_network_is_rejected() {
    let err = Engine::builder().build().unwrap_err();
    assert!(err.to_string().contains("network"), "got: {err}");
}

#[test]
fn allocation_shorter_than_geometry_is_rejected() {
    // The small VGG9 has 9 weight layers; with the dense core enabled the
    // allocation must cover 1 dense + 8 sparse layers.
    let err = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .hardware_allocation("short", &[1, 4, 2, 4])
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("allocation"), "got: {err}");
}

#[test]
fn zero_core_allocation_is_rejected() {
    let err = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .hardware_allocation("zero", &[1, 4, 0, 4, 2, 4, 4, 2, 1])
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("core"), "got: {err}");
}

#[test]
fn zero_timestep_encoder_is_rejected() {
    let err = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::direct(0))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("timestep"), "got: {err}");
}

#[test]
fn rate_coding_with_dense_core_is_rejected_and_fix_is_accepted() {
    let hw = HwConfig::from_allocation("rate", Precision::Int4, &[1, 1, 8, 4, 18, 6, 6, 20, 2, 1])
        .unwrap();
    let builder = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::rate(4))
        .precision(Precision::Int4);
    let err = builder.clone().hardware(hw.clone()).build().unwrap_err();
    assert!(err.to_string().contains("dense core"), "got: {err}");
    // The suggested fix builds and runs.
    let engine = builder.hardware(hw.without_dense_core()).build().unwrap();
    let report = engine.session().run(&images(1)[0]).unwrap();
    assert_eq!(report.timesteps, 4);
}

#[test]
fn unknown_paper_dataset_is_rejected() {
    let err = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .hardware_paper("imagenet", PerfScale::Lw)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("imagenet"), "got: {err}");
}

#[test]
fn wrong_image_shape_is_rejected_at_run_time() {
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .build()
        .unwrap();
    let wrong = Tensor::zeros(&[3, 32, 32]);
    assert!(engine.session().run(&wrong).is_err());
}

// ---------------------------------------------------------------------------
// Batch determinism
// ---------------------------------------------------------------------------

#[test]
fn run_batch_matches_sequential_low_level_runs_bitwise() {
    let n = 6;
    let imgs = images(n);

    // Engine path: one session, one batch.
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("det", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
        .build()
        .unwrap();
    let batch = engine.session().run_batch(&imgs).unwrap();
    assert_eq!(batch.len(), n);

    // Low-level path: quantize the same way, run each image separately with
    // the matching seed and a fresh per-run state.
    let mut reference = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    reference.apply_precision(Precision::Int4).unwrap();
    for (i, image) in imgs.iter().enumerate() {
        let seq = reference
            .run_seeded(image, &Encoder::paper_direct(), i as u64)
            .unwrap();
        let got = &batch.reports[i];
        assert_eq!(
            got.logits, seq.logits,
            "batched logits diverge from sequential run for image {i}"
        );
        assert_eq!(got.prediction, seq.prediction);
        assert_eq!(got.record.total_spikes(), seq.record.total_spikes());
        assert_eq!(got.timesteps, seq.timesteps);
    }
}

#[test]
fn run_batch_is_deterministic_with_stochastic_rate_coding() {
    let imgs = images(4);
    let hw = HwConfig::from_allocation(
        "rate-det",
        Precision::Int4,
        &[1, 1, 8, 4, 18, 6, 6, 20, 2, 1],
    )
    .unwrap()
    .without_dense_core();
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::rate(6))
        .precision(Precision::Int4)
        .hardware(hw)
        .build()
        .unwrap();

    let a = engine.session().run_batch(&imgs).unwrap();
    let b = engine.session().run_batch(&imgs).unwrap();
    for (ra, rb) in a.reports.iter().zip(b.reports.iter()) {
        assert_eq!(ra.logits, rb.logits);
    }

    // And batch seeding matches the low-level API: image i uses seed i.
    let mut reference = vgg9(&Vgg9Config::cifar10_small()).unwrap();
    reference.apply_precision(Precision::Int4).unwrap();
    let mut state = RunState::new(&reference).unwrap();
    for (i, image) in imgs.iter().enumerate() {
        let seq = reference
            .run_with_state(image, &Encoder::rate(6), i as u64, &mut state)
            .unwrap();
        assert_eq!(a.reports[i].logits, seq.logits);
    }
}

#[test]
fn reused_session_state_does_not_leak_between_runs() {
    // Running the same image twice in one session (state reset) must equal a
    // fresh session's result exactly.
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .precision(Precision::Int4)
        .build()
        .unwrap();
    let image = &images(1)[0];
    let mut session = engine.session();
    let first = session.run(image).unwrap();
    let second = session.run(image).unwrap();
    let fresh = engine.session().run(image).unwrap();
    assert_eq!(first.logits, second.logits);
    assert_eq!(first.logits, fresh.logits);
}

#[test]
fn batch_base_seed_offsets_apply() {
    let imgs = images(3);
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
        .encoder(Encoder::rate(5))
        .build()
        .unwrap();
    let mut session = engine.session();
    let batch = session.run_batch_seeded(&imgs, 100).unwrap();
    for (i, image) in imgs.iter().enumerate() {
        let solo = session.run_seeded(image, 100 + i as u64).unwrap();
        assert_eq!(batch.reports[i].logits, solo.logits);
    }
}
