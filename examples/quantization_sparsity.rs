//! Quantization–sparsity interplay (the Fig. 1 workload at example scale):
//! train a small VGG9 with and without int4 QAT on a synthetic CIFAR-10-like
//! dataset and compare accuracy and total spike counts.
//!
//! Run with: `cargo run --release --example quantization_sparsity`

use snn::core::network::{vgg9, Vgg9Config};
use snn::core::stats::SparsityComparison;
use snn::data::{Split, SyntheticConfig, SyntheticDataset};
use snn::train::trainer::{evaluate, TrainConfig, Trainer};
use snn::{Encoder, Precision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 60, 30));
    let encoder = Encoder::paper_direct();

    let mut results = Vec::new();
    for precision in [Precision::Fp32, Precision::Int4] {
        let mut network = vgg9(&Vgg9Config::cifar10_small())?;
        let mut cfg = TrainConfig::quick_qat(precision);
        cfg.epochs = 2;
        cfg.encoder = encoder;
        let mut trainer = Trainer::new(cfg)?;
        let report = trainer.fit(&mut network, &data)?;
        network.apply_precision(precision)?;
        let eval = evaluate(&mut network, &data, Split::Test, &encoder, None)?;
        println!(
            "{precision}: train loss {:.3} -> {:.3} | test accuracy {:.1}% | total spikes {} | spikes/sample {:.0}",
            report.epoch_losses.first().copied().unwrap_or(0.0),
            report.final_loss(),
            eval.accuracy * 100.0,
            eval.total_spikes,
            eval.mean_spikes_per_sample
        );
        results.push((precision, eval));
    }

    let (_, fp32_eval) = &results[0];
    let (_, int4_eval) = &results[1];
    let comparison = SparsityComparison::new(
        "fp32",
        &aggregate_to_record(fp32_eval),
        "int4",
        &aggregate_to_record(int4_eval),
    );
    println!(
        "\nint4 spikes vs fp32: {:+.1}% ({} -> {})",
        -comparison.spike_reduction_percent(),
        comparison.baseline_spikes,
        comparison.variant_spikes
    );
    println!(
        "(The paper reports 6.1% / 10.1% / 15.2% fewer spikes for int4 on SVHN / CIFAR-10 / CIFAR-100.)"
    );
    Ok(())
}

/// Folds an evaluation aggregate back into a `SpikeRecord` so the
/// `SparsityComparison` helper can be reused.
fn aggregate_to_record(eval: &snn::train::trainer::EvalReport) -> snn::core::spike::SpikeRecord {
    let mut record = snn::core::spike::SpikeRecord::new(1);
    for (name, &spikes) in eval
        .aggregate
        .layer_names
        .iter()
        .zip(eval.aggregate.per_layer_spikes.iter())
    {
        record.push_layer(name.clone(), 0, spikes, 0);
    }
    record
}
