//! Ablation sweeps over the accelerator's design-time knobs: compression
//! chunk width, clock gating, weight precision and neural-core scaling.
//! These extend the paper's evaluation with the sensitivity studies its
//! Sec. IV design choices imply.
//!
//! Run with: `cargo run --release --example ablation_sweeps`

use snn::accel::ablation::{
    sweep_chunk_width, sweep_clock_gating, sweep_core_scaling, sweep_precision, AblationPoint,
};
use snn::accel::trace::{synthetic_traces, ActivityProfile};
use snn::core::network::{vgg9, Vgg9Config};
use snn::{HwConfig, PerfScale, Precision};

fn print_points(title: &str, points: &[AblationPoint]) {
    println!("\n{title}");
    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>12}",
        "param", "latency[ms]", "FPS", "energy[mJ]", "power[W]"
    );
    for p in points {
        println!(
            "{:<12} {:>12.3} {:>10.0} {:>12.3} {:>12.3}",
            p.parameter, p.latency_ms, p.throughput_fps, p.energy_mj, p.dynamic_watts
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Paper-scale CIFAR-10 geometry with calibrated activity, LW int4 hardware.
    let geometry = vgg9(&Vgg9Config::cifar10())?.geometry()?;
    let traces = synthetic_traces(&geometry, &ActivityProfile::paper_direct(geometry.len()))?;
    let base = HwConfig::paper("cifar10", Precision::Int4, PerfScale::Lw)?;

    print_points(
        "ECU compression chunk width (bits scanned per cycle)",
        &sweep_chunk_width(&base, &geometry, &traces, &[8, 16, 32, 64, 128])?,
    );
    print_points(
        "Clock-gated memory regions (Sec. IV-C)",
        &sweep_clock_gating(&base, &geometry, &traces)?,
    );
    print_points(
        "Weight precision on identical allocation",
        &sweep_precision(&base, &geometry, &traces)?,
    );
    print_points(
        "Neural-core scaling (LW -> perf2 -> perf4 axis)",
        &sweep_core_scaling(&base, &geometry, &traces, &[1, 2, 4, 8])?,
    );
    Ok(())
}
