//! Design-space exploration: derive balanced neural-core allocations from the
//! Eq. 3 workload model, exactly the procedure the paper uses to size its
//! lightweight (LW) configurations (Sec. V-A).
//!
//! Run with: `cargo run --release --example design_space_exploration`

use snn::accel::dse::{allocate_balanced, lightweight_allocation};
use snn::accel::workload::from_traces;
use snn::core::network::{vgg9, Vgg9Config};
use snn::{Encoder, Engine, Precision, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Empirical workload: run the network once through the engine and read
    // the per-layer spikes from the report, exactly as the paper acquires the
    // S_i terms of Eq. 3.
    let engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small())?)
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .build()?;
    let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.013).sin().abs());
    let report = engine.session().run(&image)?;
    let workloads = from_traces(&report.traces)?;

    println!("Per-layer Eq. 3 workloads (single-core cycles):");
    for w in &workloads {
        println!(
            "  {:<8} events={:<7} out_channels={:<5} cycles={}",
            w.name, w.input_events, w.out_channels, w.single_core_cycles
        );
    }

    // Find the lightweight allocation: the smallest budget that balances the
    // per-layer latencies within 1.5x of the mean.
    let lw = lightweight_allocation(&workloads, 1.5, 96)?;
    println!(
        "\nLW allocation ({} cores, imbalance {:.2}): {:?}",
        lw.total_cores(),
        lw.imbalance,
        lw.cores
    );
    println!(
        "Layer overheads [%]: {:?}",
        lw.layer_overheads_percent()
            .iter()
            .map(|v| format!("{v:.1}"))
            .collect::<Vec<_>>()
    );

    // Scale the budget up, as the paper does for perf2 / perf4.
    for factor in [2usize, 4] {
        let scaled = allocate_balanced(&workloads, lw.total_cores() * factor)?;
        println!(
            "perf{factor} allocation ({} cores): {:?} -> bottleneck {} cycles",
            scaled.total_cores(),
            scaled.cores,
            scaled.bottleneck_cycles()
        );
    }
    Ok(())
}
