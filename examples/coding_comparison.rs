//! Direct vs rate coding (the Table II workload at example scale): run the
//! same quantized network with both encoders through two engines and compare
//! spikes, latency and energy (the rate engine's hardware has the dense core
//! disabled, as the paper's rate-coded design does).
//!
//! Run with: `cargo run --release --example coding_comparison`

use snn::core::network::{vgg9, Vgg9Config};
use snn::{Encoder, Engine, HwConfig, Precision, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.017).cos().abs());

    // Direct coding: 2 timesteps, hybrid architecture (dense + sparse cores).
    let direct_engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small())?)
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("direct-int4-LW", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
        .build()?;
    let direct = direct_engine.session().run(&image)?;

    // Rate coding: 25 timesteps, sparse cores only (dense core switched off).
    let rate_hw = HwConfig::from_allocation(
        "rate-int4-LW",
        Precision::Int4,
        &[1, 1, 8, 4, 18, 6, 6, 20, 2, 1],
    )?
    .without_dense_core();
    let rate_engine = Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small())?)
        .encoder(Encoder::paper_rate())
        .precision(Precision::Int4)
        .hardware(rate_hw)
        .build()?;
    let rate = rate_engine.session().run_seeded(&image, 7)?;

    println!("Coding  | T  | Total spikes | Latency [ms] | Energy [mJ]");
    println!(
        "Direct  | {:>2} | {:>12} | {:>12.4} | {:>10.4}",
        direct.timesteps,
        direct.record.total_spikes(),
        direct.hardware.latency_ms,
        direct.hardware.dynamic_energy_mj
    );
    println!(
        "Rate    | {:>2} | {:>12} | {:>12.4} | {:>10.4}",
        rate.timesteps,
        rate.record.total_spikes(),
        rate.hardware.latency_ms,
        rate.hardware.dynamic_energy_mj
    );
    println!(
        "\nDirect coding improvement: {:.1}x fewer spikes, {:.1}x less energy (paper: 2.6x / 26.4x)",
        rate.record.total_spikes() as f64 / direct.record.total_spikes().max(1) as f64,
        rate.hardware.dynamic_energy_mj / direct.hardware.dynamic_energy_mj.max(1e-12)
    );
    Ok(())
}
