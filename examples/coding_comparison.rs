//! Direct vs rate coding (the Table II workload at example scale): run the
//! same quantized network with both encoders and compare spikes, latency and
//! energy on the hybrid accelerator (dense core disabled for rate coding).
//!
//! Run with: `cargo run --release --example coding_comparison`

use snn_dse::accel::accelerator::HybridAccelerator;
use snn_dse::accel::config::HwConfig;
use snn_dse::core::encoding::Encoder;
use snn_dse::core::network::{vgg9, Vgg9Config};
use snn_dse::core::quant::Precision;
use snn_dse::core::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut network = vgg9(&Vgg9Config::cifar10_small())?;
    network.apply_precision(Precision::Int4)?;
    let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.017).cos().abs());

    // Direct coding: 2 timesteps, hybrid architecture (dense + sparse cores).
    let direct_out = network.run(&image, &Encoder::paper_direct())?;
    let direct_hw = HwConfig::from_allocation(
        "direct-int4-LW",
        Precision::Int4,
        &[1, 8, 4, 18, 6, 6, 20, 2, 1],
    )?;
    let direct_report =
        HybridAccelerator::new(&network, direct_hw)?.estimate(&direct_out.traces)?;

    // Rate coding: 25 timesteps, sparse cores only (dense core switched off).
    let rate_out = network.run_seeded(&image, &Encoder::paper_rate(), 7)?;
    let rate_hw = HwConfig::from_allocation(
        "rate-int4-LW",
        Precision::Int4,
        &[1, 1, 8, 4, 18, 6, 6, 20, 2, 1],
    )?
    .without_dense_core();
    let rate_report = HybridAccelerator::new(&network, rate_hw)?.estimate(&rate_out.traces)?;

    println!("Coding  | T  | Total spikes | Latency [ms] | Energy [mJ]");
    println!(
        "Direct  | {:>2} | {:>12} | {:>12.4} | {:>10.4}",
        direct_out.timesteps,
        direct_out.record.total_spikes(),
        direct_report.latency_ms,
        direct_report.dynamic_energy_mj
    );
    println!(
        "Rate    | {:>2} | {:>12} | {:>12.4} | {:>10.4}",
        rate_out.timesteps,
        rate_out.record.total_spikes(),
        rate_report.latency_ms,
        rate_report.dynamic_energy_mj
    );
    println!(
        "\nDirect coding improvement: {:.1}x fewer spikes, {:.1}x less energy (paper: 2.6x / 26.4x)",
        rate_out.record.total_spikes() as f64 / direct_out.record.total_spikes().max(1) as f64,
        rate_report.dynamic_energy_mj / direct_report.dynamic_energy_mj.max(1e-12)
    );
    Ok(())
}
