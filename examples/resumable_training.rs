//! Crash-safe resumable training: run a short training job that checkpoints
//! at batch boundaries, interrupt it mid-run, resume from the checkpoint
//! into a fresh process-like state, and verify the resumed run lands on
//! weights bitwise identical to a run that was never interrupted.
//!
//! Run with: `cargo run --release --example resumable_training`

use snn::core::network::{vgg9, Layer, SnnNetwork, Vgg9Config};
use snn::data::{SyntheticConfig, SyntheticDataset};
use snn::train::trainer::{StopHandle, TrainConfig, Trainer};
use snn::train::TrainCheckpoint;

fn weight_bits(net: &SnnNetwork) -> Vec<u32> {
    net.layers()
        .iter()
        .flat_map(|layer| match layer {
            Layer::Conv { conv, .. } => conv.weight().as_slice().to_vec(),
            Layer::Linear { linear, .. } => linear.weight().as_slice().to_vec(),
            Layer::Pool { .. } => Vec::new(),
        })
        .map(|w| w.to_bits())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticDataset::generate(SyntheticConfig::cifar10_like().scaled_down(16, 24, 12));
    let checkpoint_path = std::env::temp_dir().join("resumable_training.snntrain");

    let mut cfg = TrainConfig::quick();
    cfg.epochs = 2;
    cfg.max_train_samples = Some(12);
    cfg.batch_size = 4;
    cfg.threads = 2;
    cfg.checkpoint_path = Some(checkpoint_path.clone());
    cfg.checkpoint_every = 1; // durable snapshot after every optimizer step

    // 1. Reference: the same job, never interrupted (no checkpointing).
    let mut reference_cfg = cfg.clone();
    reference_cfg.checkpoint_path = None;
    reference_cfg.checkpoint_every = 0;
    let mut reference_net = vgg9(&Vgg9Config::cifar10_small())?;
    let reference = Trainer::new(reference_cfg)?.fit(&mut reference_net, &data)?;
    println!(
        "reference run: {} epochs, final loss {:.4}",
        reference.epoch_losses.len(),
        reference.final_loss()
    );

    // 2. Interrupted run: a StopHandle stops it cleanly after 3 optimizer
    //    steps — mid-epoch — and the trainer leaves a checkpoint behind.
    //    (A SIGKILL mid-write leaves the previous checkpoint intact: saves
    //    are temp-file + fsync + atomic rename with a CRC-64 trailer.)
    let stop = StopHandle::new();
    stop.stop_after_steps(3);
    let mut interrupted_net = vgg9(&Vgg9Config::cifar10_small())?;
    let partial = Trainer::new(cfg)?.fit_with_stop(&mut interrupted_net, &data, &stop)?;
    println!(
        "interrupted:   completed={} checkpoint={:?}",
        partial.completed,
        partial.checkpoint.as_deref()
    );

    // 3. Resume into a FRESH network: weights, optimizer moments, schedule
    //    position and the epoch cursor all come from the checkpoint file.
    let checkpoint = TrainCheckpoint::load(&checkpoint_path)?;
    println!(
        "resuming from epoch {} / step {}",
        checkpoint.cursor.epoch, checkpoint.cursor.steps
    );
    let mut resumed_net = vgg9(&Vgg9Config::cifar10_small())?;
    let resumed = Trainer::resume(checkpoint, &mut resumed_net, &data)?;
    println!(
        "resumed run:   {} epochs, final loss {:.4}",
        resumed.epoch_losses.len(),
        resumed.final_loss()
    );

    // 4. The contract: interruption must not change a single bit.
    assert_eq!(
        weight_bits(&resumed_net),
        weight_bits(&reference_net),
        "resumed weights must be bitwise identical to the uninterrupted run"
    );
    assert_eq!(resumed.epoch_losses, reference.epoch_losses);
    println!("resume is bitwise identical to the uninterrupted run");

    std::fs::remove_file(&checkpoint_path).ok();
    Ok(())
}
