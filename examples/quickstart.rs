//! Quickstart: build the paper's (scaled-down) VGG9, run one direct-coded
//! inference, and estimate how the hybrid accelerator would execute it.
//!
//! Run with: `cargo run --release --example quickstart`

use snn_dse::accel::accelerator::HybridAccelerator;
use snn_dse::accel::config::HwConfig;
use snn_dse::core::encoding::Encoder;
use snn_dse::core::network::{vgg9, Vgg9Config};
use snn_dse::core::quant::Precision;
use snn_dse::core::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a scaled-down CIFAR-10-like VGG9 (7 conv + 2 FC layers, each
    //    followed by a LIF population with the paper's beta/theta).
    let cfg = Vgg9Config::cifar10_small();
    let mut network = vgg9(&cfg)?;
    println!(
        "Built {} with {} parameters across {} layers",
        cfg.name,
        network.num_params(),
        network.layers().len()
    );

    // 2. Quantize the weights to int4, as the paper's QAT models are deployed.
    network.apply_precision(Precision::Int4)?;

    // 3. Run one direct-coded inference (2 timesteps) on a synthetic image.
    let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.021).sin().abs());
    let output = network.run(&image, &Encoder::paper_direct())?;
    println!(
        "Prediction: class {} | total spikes: {} | average sparsity: {:.1}%",
        output.prediction,
        output.record.total_spikes(),
        output.record.average_sparsity() * 100.0
    );

    // 4. Map the network onto the hybrid accelerator and estimate latency,
    //    throughput and energy for this inference.
    let hw = HwConfig::from_allocation(
        "quickstart-int4",
        Precision::Int4,
        &[1, 8, 4, 18, 6, 6, 20, 2, 1],
    )?;
    let accelerator = HybridAccelerator::new(&network, hw)?;
    let report = accelerator.estimate(&output.traces)?;
    println!(
        "Accelerator: {:.3} ms latency | {:.0} FPS | {:.3} mJ/image | {:.2} W dynamic | fits device: {}",
        report.latency_ms,
        report.throughput_fps,
        report.dynamic_energy_mj,
        report.total_dynamic_watts,
        report.fits_device
    );
    for layer in &report.layers {
        println!(
            "  {:<8} cores={:<3} cycles={:<9} power={:.3} W energy={:.4} mJ",
            layer.name, layer.neural_cores, layer.cycles, layer.dynamic_watts, layer.dynamic_mj
        );
    }
    Ok(())
}
