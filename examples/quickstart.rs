//! Quickstart: build the paper's (scaled-down) VGG9 and run one direct-coded
//! inference through the unified `Engine`/`Session` API — classification,
//! per-layer spike traces and the hybrid accelerator's performance estimate
//! all come back in a single `RunReport`.
//!
//! Run with: `cargo run --release --example quickstart`

use snn::core::network::{vgg9, Vgg9Config};
use snn::{Encoder, Engine, Precision, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a scaled-down CIFAR-10-like VGG9 (7 conv + 2 FC layers, each
    //    followed by a LIF population with the paper's beta/theta) and wrap
    //    it into an engine: int4 deployment weights, direct coding at 2
    //    timesteps, and the paper's LW-style neural-core allocation.
    let cfg = Vgg9Config::cifar10_small();
    let engine = Engine::builder()
        .network(vgg9(&cfg)?)
        .encoder(Encoder::paper_direct())
        .precision(Precision::Int4)
        .hardware_allocation("quickstart-int4", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
        .build()?;
    println!(
        "Built {} with {} parameters across {} layers",
        cfg.name,
        engine.network().num_params(),
        engine.network().layers().len()
    );

    // 2. Run one inference on a synthetic image. The report fuses what used
    //    to be a manual two-step (network run, then accelerator estimate).
    let mut session = engine.session();
    let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.021).sin().abs());
    let report = session.run(&image)?;
    println!(
        "Prediction: class {} | total spikes: {} | average sparsity: {:.1}%",
        report.prediction,
        report.record.total_spikes(),
        report.record.average_sparsity() * 100.0
    );
    println!(
        "Accelerator: {:.3} ms latency | {:.0} FPS | {:.3} mJ/image | {:.2} W dynamic | fits device: {}",
        report.hardware.latency_ms,
        report.hardware.throughput_fps,
        report.hardware.dynamic_energy_mj,
        report.hardware.total_dynamic_watts,
        report.hardware.fits_device
    );
    for layer in &report.hardware.layers {
        println!(
            "  {:<8} cores={:<3} cycles={:<9} power={:.3} W energy={:.4} mJ",
            layer.name, layer.neural_cores, layer.cycles, layer.dynamic_watts, layer.dynamic_mj
        );
    }

    // 3. Batched inference reuses the session's preallocated buffers and is
    //    bitwise-deterministic (image i runs with encoder seed i).
    let images: Vec<Tensor> = (0..8)
        .map(|k| {
            Tensor::from_fn(&[3, 16, 16], move |i| {
                (((i + 131 * k) as f32) * 0.021).sin().abs()
            })
        })
        .collect();
    let batch = session.run_batch(&images)?;
    println!(
        "\nBatch of {}: predictions {:?} | mean latency {:.3} ms | total energy {:.3} mJ",
        batch.len(),
        batch.predictions(),
        batch.mean_latency_ms(),
        batch.total_energy_mj
    );
    Ok(())
}
