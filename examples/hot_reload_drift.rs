//! Operating a two-model zoo: spike-rate drift detection and validated
//! hot-reload, end to end.
//!
//! The walkthrough registers two models behind one HTTP endpoint, lets the
//! `cifar` model calibrate its per-layer spike-rate baseline on dim
//! traffic, injects a synthetic distribution shift (bright, dense images)
//! until `/healthz` flips the model to `degraded`, then hot-swaps the
//! known-good checkpoint back in — golden-probe validated, atomic, and the
//! health flag clears as the tracker recalibrates.
//!
//! Run with: `cargo run --release --example hot_reload_drift`

use snn::core::io::Checkpoint;
use snn::core::network::{vgg9, Vgg9Config};
use snn::core::stats::DriftConfig;
use snn::serve::{
    DriftPolicy, HttpServer, InferenceRequest, ModelZoo, ProbeSpec, ServeConfig, ZooConfig,
};
use snn::{Encoder, Engine, Precision, Tensor};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn engine(precision: Precision) -> Result<Engine, snn::SnnError> {
    Engine::builder()
        .network(vgg9(&Vgg9Config::cifar10_small())?)
        .encoder(Encoder::direct(2))
        .precision(precision)
        .hardware_allocation("zoo-demo", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
        .threads(1)
        .build()
}

/// Calibration-era traffic: dim images, sparse activity.
fn dim_image(i: u64) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], move |p| {
        (((p as u64 + 97 * i) as f32) * 0.013).sin().abs() * 0.05
    })
}

/// The injected shift: bright, dense images — every layer spikes harder.
fn bright_image(i: u64) -> Tensor {
    Tensor::from_fn(&[3, 16, 16], move |p| {
        0.5 + (((p as u64 + 31 * i) as f32) * 0.017).sin().abs()
    })
}

/// What `curl http://<addr>/healthz` would print.
fn healthz(addr: std::net::SocketAddr) -> std::io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: zoo\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or("")
        .trim()
        .to_string();
    Ok(format!("{status} | {body}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Two models, one endpoint. The drift window is kept small so the
    //    walkthrough flips states in tens of requests.
    let cifar = engine(Precision::Fp32)?;
    let mnist = engine(Precision::Int4)?;
    let config = || ZooConfig {
        serve: ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            ..ServeConfig::default()
        },
        drift: DriftConfig {
            calibration: 16,
            window: 32,
            min_window: 16,
            threshold: 0.3,
        },
        drift_policy: DriftPolicy::Annotate,
        probes: vec![ProbeSpec::sanity(dim_image(999), 7, 10)],
        retain: Some(1),
    };
    let zoo = ModelZoo::new();
    zoo.register("cifar", "v1", cifar.clone(), config())?;
    zoo.register("mnist", "v1", mnist, config())?;

    // The known-good weights, checkpointed through the CRC-verified io
    // path — this is what an operator swaps back in when drift strikes.
    let mut ckpt = std::env::temp_dir();
    ckpt.push(format!("snn-zoo-demo-{}.ckpt", std::process::id()));
    Checkpoint::new(cifar.network().clone()).save(&ckpt)?;
    zoo.record_golden("cifar")?;

    let server = HttpServer::bind_zoo(zoo.clone(), "127.0.0.1:0")?;
    let addr = server.local_addr();
    println!("zoo serving at http://{addr}");
    println!("  curl http://{addr}/healthz");
    println!("  curl http://{addr}/v1/stats");
    println!("  curl -d '{{\"shape\":[3,16,16],\"data\":[...],\"model\":\"cifar\"}}' http://{addr}/v1/infer\n");

    // 2. Calibration: the tracker freezes its per-layer baseline after 16
    //    runs, then fills the sliding window on the same distribution.
    for i in 0..48u64 {
        zoo.infer(InferenceRequest::seeded(dim_image(i), i).with_model("cifar"))?;
    }
    println!("after calibration   {}", healthz(addr)?);

    // 3. The shift: bright traffic multiplies per-layer spike rates. The
    //    windowed distribution diverges from the baseline and the model
    //    flips to degraded (responses now carry \"degraded\": true).
    for i in 0..32u64 {
        let (_, degraded) =
            zoo.infer_annotated(InferenceRequest::seeded(bright_image(i), i).with_model("cifar"))?;
        if degraded {
            println!("degraded after {} shifted requests", i + 1);
            break;
        }
    }
    println!("after shift         {}", healthz(addr)?);
    let stats = zoo.stats();
    let m = &stats.models["cifar"];
    println!(
        "drift verdict: kl={:.3} layer={} (threshold 0.3)\n",
        m.drift_kl,
        m.drift_layer.as_deref().unwrap_or("-")
    );

    // 4. Recovery: hot-swap the known-good checkpoint back. The candidate
    //    must pass the recorded golden probes bitwise before the atomic,
    //    epoch-pinned swap; the tracker recalibrates and the flag clears.
    zoo.load_with("cifar", "v2", &ckpt, |c| cifar.with_network(c.network))?;
    println!("after hot-swap      {}", healthz(addr)?);
    println!(
        "cifar now at version {} ({} swap, {} validation failures)",
        zoo.stats().models["cifar"].version,
        zoo.stats().models["cifar"].swaps,
        zoo.stats().models["cifar"].validation_failures,
    );

    server.shutdown();
    let _ = std::fs::remove_file(ckpt);
    Ok(())
}
