//! Umbrella crate re-exporting the SNN-DSE reproduction workspace.
//!
//! See the individual crates for detail:
//! [`snn_core`], [`snn_data`], [`snn_train`], [`snn_accel`].

pub use snn_accel as accel;
pub use snn_core as core;
pub use snn_data as data;
pub use snn_train as train;
