//! # snn — the facade crate of the SNN-DSE reproduction
//!
//! One-call execution API over the workspace's five crates, reproducing the
//! DATE 2025 paper "Exploring the Sparsity-Quantization Interplay on a Novel
//! Hybrid SNN Event-Driven Architecture".
//!
//! The underlying crates expose a research-style API: build a network, run
//! it, collect traces, separately construct an accelerator model, feed the
//! traces back in. This crate fuses that pipeline behind two types:
//!
//! * [`Engine`] — an immutable, cheaply shareable bundle of the model
//!   weights, the input encoder and the precomputed hardware plan. Built once
//!   via [`Engine::builder`], validated at [`EngineBuilder::build`].
//! * [`Session`] — per-thread mutable state (preallocated membrane, spike
//!   and im2col scratch buffers) vended by [`Engine::session`]. Its
//!   [`Session::run`] and [`Session::run_batch`] return a [`RunReport`] that
//!   contains the classification output, the per-layer spike traces **and**
//!   the accelerator's latency/energy/resource estimate in one struct.
//!
//! # Quickstart
//!
//! ```
//! use snn::{Engine, Precision};
//! use snn::core::encoding::Encoder;
//! use snn::core::network::{vgg9, Vgg9Config};
//! use snn::core::tensor::Tensor;
//!
//! # fn main() -> Result<(), snn::SnnError> {
//! let cfg = Vgg9Config::cifar10_small();
//! let engine = Engine::builder()
//!     .network(vgg9(&cfg)?)
//!     .encoder(Encoder::direct(2))
//!     .precision(Precision::Int4)
//!     .hardware_allocation("quickstart", &[1, 8, 4, 18, 6, 6, 20, 2, 1])
//!     .build()?;
//! let mut session = engine.session();
//! let image = Tensor::from_fn(&[3, 16, 16], |i| ((i as f32) * 0.02).sin().abs());
//! let report = session.run(&image)?;
//! assert_eq!(report.logits.len(), cfg.num_classes);
//! println!(
//!     "class {} | {:.3} ms | {:.3} mJ",
//!     report.prediction, report.hardware.latency_ms, report.hardware.dynamic_energy_mj
//! );
//! # Ok(())
//! # }
//! ```
//!
//! Batched inference amortizes every per-run allocation and is bitwise
//! deterministic: `run_batch(&images)` equals N sequential
//! [`Session::run_seeded`] calls with seeds `0..N`.
//!
//! The member crates remain available for advanced use as [`core`],
//! [`data`], [`train`] and [`accel`].

pub use snn_accel as accel;
pub use snn_core as core;
pub use snn_data as data;
pub use snn_serve as serve;
pub use snn_train as train;

pub use snn_accel::accelerator::{EstimatePlan, HybridAccelerator, InferenceReport, LayerPerf};
pub use snn_accel::config::{HwConfig, PerfScale};
pub use snn_core::encoding::Encoder;
pub use snn_core::error::SnnError;
pub use snn_core::network::{LayerTrace, RunState, SnnNetwork, Vgg9Config};
pub use snn_core::quant::Precision;
pub use snn_core::spike::SpikeRecord;
pub use snn_core::tensor::Tensor;

use std::sync::Arc;

/// The immutable, engine-wide state shared by every [`Session`].
#[derive(Debug)]
struct EngineShared {
    network: Arc<SnnNetwork>,
    encoder: Encoder,
    plan: EstimatePlan,
    precision: Precision,
    threads: usize,
}

/// Resolves the worker-thread count for batched inference: an explicit
/// builder setting wins, then the `SNN_THREADS` environment variable, then
/// the machine's available parallelism — the [`snn_core::resolve_threads`]
/// rule shared with the trainer's worker pool, so the two paths cannot
/// drift. Values below 1 (builder or env) clamp to 1 — sequential execution
/// — matching [`EngineBuilder::threads`]'s documented behavior; an
/// unparsable `SNN_THREADS` is ignored.
fn resolve_threads(builder_threads: Option<usize>) -> usize {
    snn_core::resolve_threads(builder_threads)
}

/// Fused result of one inference: classification output, per-layer spike
/// traces, and the accelerator's performance estimate — everything the old
/// API needed a manual `run` → `estimate` two-step for.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-class scores (total spike count of each class's population group).
    pub logits: Vec<f32>,
    /// Index of the predicted class.
    pub prediction: usize,
    /// Per-layer spike record (summed over timesteps).
    pub record: SpikeRecord,
    /// Detailed per-layer traces (inputs/outputs per timestep, spike volumes).
    pub traces: Vec<LayerTrace>,
    /// Number of timesteps simulated.
    pub timesteps: usize,
    /// The accelerator's latency/throughput/power/energy/resource estimate
    /// for this inference.
    pub hardware: InferenceReport,
}

/// Aggregate result of [`Session::run_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-image reports, in input order.
    pub reports: Vec<RunReport>,
    /// Sum of per-image accelerator latencies in milliseconds.
    pub total_latency_ms: f64,
    /// Sum of per-image total energy (dynamic + static share) in millijoules.
    pub total_energy_mj: f64,
}

impl BatchReport {
    /// Number of images in the batch.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Mean accelerator latency per image in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.total_latency_ms / self.reports.len() as f64
        }
    }

    /// Hardware throughput bound in images/second: the batch streamed through
    /// the accelerator's layer pipeline at the bottleneck layer's rate.
    /// Returns `0.0` for an empty batch.
    pub fn throughput_fps(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports
            .iter()
            .map(|r| r.hardware.throughput_fps)
            .fold(f64::INFINITY, f64::min)
    }

    /// The predicted class per image.
    pub fn predictions(&self) -> Vec<usize> {
        self.reports.iter().map(|r| r.prediction).collect()
    }
}

/// How the builder resolves the hardware configuration at build time.
#[derive(Debug, Clone)]
enum HardwareSpec {
    /// Derive a minimal one-core-per-layer configuration from the geometry.
    Auto,
    /// An explicit, fully-formed configuration.
    Config(HwConfig),
    /// A paper-style allocation tuple resolved against the chosen precision.
    Allocation {
        name: String,
        allocation: Vec<usize>,
    },
    /// A paper preset (`LW`/`perf2`/`perf4`) for a named dataset.
    Paper { dataset: String, scale: PerfScale },
}

/// Builder for [`Engine`]; start from [`Engine::builder`].
///
/// Only [`EngineBuilder::network`] is mandatory. Defaults: direct coding at
/// the paper's 2 timesteps, [`Precision::Fp32`], batch-norm folding off, and
/// an automatically derived one-core-per-layer hardware configuration.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    network: Option<SnnNetwork>,
    encoder: Encoder,
    precision: Precision,
    fold_batchnorm: bool,
    hardware: HardwareSpec,
    threads: Option<usize>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            network: None,
            encoder: Encoder::paper_direct(),
            precision: Precision::Fp32,
            fold_batchnorm: false,
            hardware: HardwareSpec::Auto,
            threads: None,
        }
    }
}

impl EngineBuilder {
    /// Sets the network to execute (required).
    #[must_use]
    pub fn network(mut self, network: SnnNetwork) -> Self {
        self.network = Some(network);
        self
    }

    /// Sets the input encoder (default: direct coding, 2 timesteps).
    #[must_use]
    pub fn encoder(mut self, encoder: Encoder) -> Self {
        self.encoder = encoder;
        self
    }

    /// Sets the deployment precision; the engine materialises the weights at
    /// this precision during [`EngineBuilder::build`] (default: fp32).
    #[must_use]
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Folds batch normalisation into the preceding convolutions at build
    /// time, producing the inference-time network the hardware runs
    /// (default: off).
    #[must_use]
    pub fn fold_batchnorm(mut self, fold: bool) -> Self {
        self.fold_batchnorm = fold;
        self
    }

    /// Uses an explicit hardware configuration.
    #[must_use]
    pub fn hardware(mut self, config: HwConfig) -> Self {
        self.hardware = HardwareSpec::Config(config);
        self
    }

    /// Uses a paper-style allocation tuple (dense-core rows followed by the
    /// per-sparse-layer neural core counts), resolved against the builder's
    /// precision at build time.
    #[must_use]
    pub fn hardware_allocation(mut self, name: impl Into<String>, allocation: &[usize]) -> Self {
        self.hardware = HardwareSpec::Allocation {
            name: name.into(),
            allocation: allocation.to_vec(),
        };
        self
    }

    /// Uses the paper's preset configuration for a dataset
    /// (`"svhn"`/`"cifar10"`/`"cifar100"`) at the given performance scale.
    #[must_use]
    pub fn hardware_paper(mut self, dataset: impl Into<String>, scale: PerfScale) -> Self {
        self.hardware = HardwareSpec::Paper {
            dataset: dataset.into(),
            scale,
        };
        self
    }

    /// Sets the number of worker threads `Session::run_batch` fans images
    /// out over. Values below 1 are clamped to 1 (sequential execution).
    ///
    /// Default: the `SNN_THREADS` environment variable if set, otherwise the
    /// machine's available parallelism. Batched results are bitwise-identical
    /// at every thread count — images are independent (per-image seeds, one
    /// `RunState` per worker).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// Build-time work: batch-norm folding (if requested), weight
    /// quantization to the chosen precision, hardware-plan construction
    /// (allocation coverage, resource and power models).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if no network was supplied, the
    /// encoder has zero timesteps, the hardware configuration does not cover
    /// the network's layers, an explicit [`HwConfig`]'s precision differs
    /// from the engine precision (the fused report would model hardware for
    /// weights the engine is not running), or a rate-coded engine keeps the
    /// dense core enabled (rate-coded inputs are binary spikes; call
    /// [`HwConfig::without_dense_core`] and allocate a sparse core for the
    /// input layer instead).
    pub fn build(self) -> Result<Engine, SnnError> {
        let mut network = self
            .network
            .ok_or_else(|| SnnError::config("network", "Engine::builder() requires a network"))?;
        if self.encoder.timesteps == 0 {
            return Err(SnnError::config(
                "encoder",
                "encoder must run at least one timestep",
            ));
        }
        if self.fold_batchnorm {
            network.fold_batchnorm()?;
        }
        network.apply_precision(self.precision)?;
        let geometry_len = network.geometry()?.len();

        let hardware = match self.hardware {
            HardwareSpec::Config(config) => config,
            HardwareSpec::Allocation { name, allocation } => {
                HwConfig::from_allocation(name, self.precision, &allocation)?
            }
            HardwareSpec::Paper { dataset, scale } => {
                HwConfig::paper(&dataset, self.precision, scale)?
            }
            HardwareSpec::Auto => {
                // One dense row plus one neural core per layer; rate-coded
                // engines get a sparse core for the input layer instead of
                // the dense core.
                if self.encoder.produces_binary_input() {
                    HwConfig::from_allocation("auto", self.precision, &vec![1; geometry_len + 1])?
                        .without_dense_core()
                } else {
                    HwConfig::from_allocation("auto", self.precision, &vec![1; geometry_len])?
                }
            }
        };
        check_dense_core(&self.encoder, &hardware)?;
        if hardware.precision != self.precision {
            return Err(SnnError::config(
                "hardware",
                format!(
                    "hardware precision {} does not match the engine precision {}; the fused \
                     report would model hardware for weights the engine is not running \
                     (use Engine::with_hardware for cross-precision hardware sweeps)",
                    hardware.precision, self.precision
                ),
            ));
        }

        let plan = HybridAccelerator::new(&network, hardware)?.plan(self.encoder.timesteps)?;
        Ok(Engine {
            shared: Arc::new(EngineShared {
                network: Arc::new(network),
                encoder: self.encoder,
                plan,
                precision: self.precision,
                threads: resolve_threads(self.threads),
            }),
        })
    }
}

/// One fused inference: network forward (event-driven where the input is
/// sparse enough) plus the hardware estimate. Shared by the sequential and
/// parallel batch paths — each caller brings its own `RunState`, which is all
/// the mutable state an inference needs.
fn run_one(
    shared: &EngineShared,
    state: &mut RunState,
    image: &Tensor,
    seed: u64,
) -> Result<RunReport, SnnError> {
    let output = shared
        .network
        .run_with_state(image, &shared.encoder, seed, state)?;
    let hardware = shared.plan.estimate(&output.traces)?;
    Ok(RunReport {
        logits: output.logits,
        prediction: output.prediction,
        record: output.record,
        traces: output.traces,
        timesteps: output.timesteps,
        hardware,
    })
}

/// Rate-coded inputs are binary spikes and bypass the dense core; a hardware
/// configuration that still instantiates it is a contradiction worth
/// rejecting early.
fn check_dense_core(encoder: &Encoder, hardware: &HwConfig) -> Result<(), SnnError> {
    if encoder.produces_binary_input() && hardware.dense_core_enabled {
        return Err(SnnError::config(
            "hardware",
            "rate coding produces binary input spikes, which bypass the dense core: \
             use HwConfig::without_dense_core() and allocate a sparse core for the \
             input layer",
        ));
    }
    Ok(())
}

/// An immutable, shareable inference engine: model weights at their
/// deployment precision, the input encoder, and the precomputed hardware
/// plan (accelerator geometry, area and power models).
///
/// Cloning an `Engine` is cheap (an [`Arc`] bump); every clone shares the
/// same weights and plan. Per-thread mutable state lives in the [`Session`]s
/// it vends.
#[derive(Debug, Clone)]
pub struct Engine {
    shared: Arc<EngineShared>,
}

impl Engine {
    /// Starts building an engine.
    ///
    /// # Example
    ///
    /// ```
    /// use snn::core::network::{vgg9, Vgg9Config};
    /// use snn::{Engine, Precision};
    ///
    /// # fn main() -> Result<(), snn::SnnError> {
    /// let engine = Engine::builder()
    ///     .network(vgg9(&Vgg9Config::cifar10_small())?)
    ///     .precision(Precision::Int4)
    ///     .build()?; // auto-derives a one-core-per-layer hardware plan
    /// assert_eq!(engine.precision(), Precision::Int4);
    /// assert_eq!(engine.encoder().timesteps, 2); // paper default: direct, T=2
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Creates a session: the per-thread handle that actually runs
    /// inferences, with preallocated membrane/spike/im2col scratch buffers.
    pub fn session(&self) -> Session {
        let state = RunState::new(&self.shared.network)
            .expect("engine network geometry was validated at build time");
        Session {
            shared: Arc::clone(&self.shared),
            state,
            worker_states: Vec::new(),
        }
    }

    /// The network the engine executes (weights already at
    /// [`Engine::precision`]).
    pub fn network(&self) -> &SnnNetwork {
        &self.shared.network
    }

    /// The input encoder.
    pub fn encoder(&self) -> Encoder {
        self.shared.encoder
    }

    /// The deployment precision.
    pub fn precision(&self) -> Precision {
        self.shared.precision
    }

    /// The hardware configuration behind the plan.
    pub fn hardware(&self) -> &HwConfig {
        self.shared.plan.config()
    }

    /// The precomputed estimate plan shared by all sessions.
    pub fn plan(&self) -> &EstimatePlan {
        &self.shared.plan
    }

    /// Derives an engine with a different hardware configuration but the same
    /// (already quantized) weights and encoder. The network is shared, not
    /// cloned; only the hardware plan is rebuilt. Used for hardware sweeps
    /// over identical workloads (e.g. LW vs perf2 vs perf4) — unlike
    /// [`EngineBuilder::build`], the hardware precision may differ from the
    /// engine precision, which is exactly how the paper evaluates fp32 vs
    /// int4 hardware on identical traces.
    ///
    /// # Errors
    ///
    /// Same dense-core/coverage validation as [`EngineBuilder::build`].
    pub fn with_hardware(&self, hardware: HwConfig) -> Result<Engine, SnnError> {
        check_dense_core(&self.shared.encoder, &hardware)?;
        let plan = HybridAccelerator::new(&self.shared.network, hardware)?
            .plan(self.shared.encoder.timesteps)?;
        Ok(Engine {
            shared: Arc::new(EngineShared {
                network: Arc::clone(&self.shared.network),
                encoder: self.shared.encoder,
                plan,
                precision: self.shared.precision,
                threads: self.shared.threads,
            }),
        })
    }

    /// Derives an engine running `network` — e.g. weights reloaded from a
    /// checkpoint — with this engine's encoder, precision, thread count and
    /// hardware configuration. This is the hot-reload path: the serving
    /// registry validates the derived engine against golden probes and
    /// swaps it in atomically while the incumbent keeps serving.
    ///
    /// The network is quantized to [`Engine::precision`] and the hardware
    /// plan is rebuilt for its geometry. Unlike [`EngineBuilder::build`],
    /// batch-norm folding is *not* applied — a checkpointed network carries
    /// whatever structure it was saved with; request folding through the
    /// builder when loading raw training checkpoints.
    ///
    /// # Errors
    ///
    /// Same quantization and hardware coverage validation as
    /// [`EngineBuilder::build`] (e.g. the hardware allocation must cover
    /// the new network's layers).
    pub fn with_network(&self, mut network: SnnNetwork) -> Result<Engine, SnnError> {
        network.apply_precision(self.shared.precision)?;
        let hardware = self.shared.plan.config().clone();
        check_dense_core(&self.shared.encoder, &hardware)?;
        let plan =
            HybridAccelerator::new(&network, hardware)?.plan(self.shared.encoder.timesteps)?;
        Ok(Engine {
            shared: Arc::new(EngineShared {
                network: Arc::new(network),
                encoder: self.shared.encoder,
                plan,
                precision: self.shared.precision,
                threads: self.shared.threads,
            }),
        })
    }

    /// The number of worker threads [`Session::run_batch`] fans out over.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }
}

/// Per-thread inference handle vended by [`Engine::session`].
///
/// Owns the mutable run state — LIF membrane potentials, firing history,
/// spike-plane ping-pong buffers and the conv im2col/matmul-panel/gather
/// scratch — which is reset (not reallocated) between runs, so batched
/// inference pays no per-image allocation cost for them. When the engine's
/// thread count is above one, [`Session::run_batch`] fans images out over
/// scoped worker threads, each with its own lazily created (then cached)
/// `RunState`. Every run's hardware estimate reuses the engine's memoized
/// [`EstimatePlan`] (area/power models plus the per-layer cycle models), so
/// a batch only re-folds per-trace spike counts.
#[derive(Debug)]
pub struct Session {
    shared: Arc<EngineShared>,
    state: RunState,
    /// Per-worker run states for parallel batches, created on first use and
    /// reused by subsequent `run_batch` calls.
    worker_states: Vec<RunState>,
}

impl Session {
    /// Runs one inference (seed 0 for the stochastic rate encoder) and
    /// returns the fused [`RunReport`].
    ///
    /// # Errors
    ///
    /// Returns shape errors for a wrongly-shaped image and propagates any
    /// layer-level error.
    pub fn run(&mut self, image: &Tensor) -> Result<RunReport, SnnError> {
        self.run_seeded(image, 0)
    }

    /// Like [`Session::run`] with an explicit encoder seed.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run_seeded(&mut self, image: &Tensor, seed: u64) -> Result<RunReport, SnnError> {
        run_one(&self.shared, &mut self.state, image, seed)
    }

    /// Runs a batch of images through the session and returns per-image
    /// reports plus aggregates. Images are fanned out over the engine's
    /// worker-thread count (builder [`EngineBuilder::threads`], `SNN_THREADS`
    /// or the available parallelism); each worker reuses its own preallocated
    /// run state across the batch.
    ///
    /// Deterministic at every thread count: image `i` runs with encoder seed
    /// `i` and its own independent LIF/encoder state, so the logits are
    /// bitwise-identical to `N` sequential [`Session::run_seeded`] calls with
    /// seeds `0..N` (or to `SnnNetwork::run_seeded` on the same quantized
    /// network), regardless of how the batch was partitioned.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed image that fails; same
    /// conditions as [`Session::run`].
    pub fn run_batch(&mut self, images: &[Tensor]) -> Result<BatchReport, SnnError> {
        self.run_batch_seeded(images, 0)
    }

    /// Like [`Session::run_batch`] but image `i` uses encoder seed
    /// `base_seed + i`.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run_batch`].
    pub fn run_batch_seeded(
        &mut self,
        images: &[Tensor],
        base_seed: u64,
    ) -> Result<BatchReport, SnnError> {
        self.run_batch_inner(images, &|i| base_seed + i as u64)
    }

    /// Like [`Session::run_batch`] but image `i` uses the explicit
    /// `seeds[i]`. This is the serving layer's entry point: requests arrive
    /// with arbitrary per-request seeds, and running them as one coalesced
    /// batch here is bitwise-identical to running each alone through
    /// [`Session::run_seeded`].
    ///
    /// # Errors
    ///
    /// [`SnnError::InvalidConfig`] when `seeds.len() != images.len()`;
    /// otherwise same as [`Session::run_batch`].
    pub fn run_batch_with_seeds(
        &mut self,
        images: &[Tensor],
        seeds: &[u64],
    ) -> Result<BatchReport, SnnError> {
        if images.len() != seeds.len() {
            return Err(SnnError::config(
                "seeds",
                format!("{} seeds provided for {} images", seeds.len(), images.len()),
            ));
        }
        self.run_batch_inner(images, &|i| seeds[i])
    }

    /// Shared batch driver: `seed_for(i)` supplies image `i`'s encoder seed,
    /// always indexed by the *global* image position so partitioning across
    /// workers never changes results.
    fn run_batch_inner(
        &mut self,
        images: &[Tensor],
        seed_for: &(dyn Fn(usize) -> u64 + Sync),
    ) -> Result<BatchReport, SnnError> {
        let workers = self.shared.threads.min(images.len()).max(1);
        if workers <= 1 {
            let mut reports = Vec::with_capacity(images.len());
            for (i, image) in images.iter().enumerate() {
                reports.push(self.run_seeded(image, seed_for(i))?);
            }
            return Ok(Self::aggregate(reports));
        }

        // One cached RunState per worker; grown on first use.
        while self.worker_states.len() < workers {
            self.worker_states
                .push(RunState::new(&self.shared.network)?);
        }
        let shared = &self.shared;
        let chunk = images.len().div_ceil(workers);
        // Contiguous chunks keep report order == image order; every worker
        // derives its seeds from the global image index, so partitioning
        // never changes results.
        let chunk_results: Vec<Vec<Result<RunReport, SnnError>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = images
                .chunks(chunk)
                .zip(self.worker_states.iter_mut())
                .enumerate()
                .map(|(w, (chunk_images, state))| {
                    scope.spawn(move || {
                        chunk_images
                            .iter()
                            .enumerate()
                            .map(|(j, image)| {
                                let seed = seed_for(w * chunk + j);
                                run_one(shared, state, image, seed)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker thread panicked"))
                .collect()
        });

        let mut reports = Vec::with_capacity(images.len());
        for result in chunk_results.into_iter().flatten() {
            reports.push(result?);
        }
        Ok(Self::aggregate(reports))
    }

    /// Sums the per-image hardware aggregates in image order (matching the
    /// sequential accumulation order bitwise).
    fn aggregate(reports: Vec<RunReport>) -> BatchReport {
        let mut total_latency_ms = 0.0;
        let mut total_energy_mj = 0.0;
        for report in &reports {
            total_latency_ms += report.hardware.latency_ms;
            total_energy_mj += report.hardware.total_energy_mj;
        }
        BatchReport {
            reports,
            total_latency_ms,
            total_energy_mj,
        }
    }

    /// Re-estimates previously recorded traces under this session's hardware
    /// plan, without re-running the network. Used for hardware sweeps: record
    /// traces once, evaluate them under several configurations via
    /// [`Engine::with_hardware`].
    ///
    /// # Errors
    ///
    /// Returns shape/config errors if the traces do not match the engine's
    /// geometry or timestep count.
    pub fn estimate(&self, traces: &[LayerTrace]) -> Result<InferenceReport, SnnError> {
        self.shared.plan.estimate(traces)
    }

    /// The engine this session belongs to.
    pub fn engine(&self) -> Engine {
        Engine {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// The engine-backed serving runner: one per serve worker, owning its own
/// [`Session`]. A coalesced batch goes through
/// [`Session::run_batch_with_seeds`], so serving inherits the batch path's
/// bitwise determinism — a request's result is identical whether it was
/// served alone or inside any coalesced batch.
#[derive(Debug)]
pub struct EngineRunner {
    session: Session,
}

impl EngineRunner {
    fn result_from_report(report: RunReport) -> serve::InferenceResult {
        serve::InferenceResult {
            logits: report.logits,
            prediction: report.prediction,
            record: report.record,
            traces: report.traces,
            timesteps: report.timesteps,
            hardware: Some(report.hardware),
        }
    }
}

impl serve::ModelRunner for EngineRunner {
    fn run_batch(
        &mut self,
        requests: Vec<serve::InferenceRequest>,
    ) -> Vec<Result<serve::InferenceResult, SnnError>> {
        let (images, seeds): (Vec<Tensor>, Vec<u64>) =
            requests.into_iter().map(|r| (r.image, r.seed)).unzip();
        match self.session.run_batch_with_seeds(&images, &seeds) {
            Ok(batch) => batch
                .reports
                .into_iter()
                .map(|report| Ok(Self::result_from_report(report)))
                .collect(),
            // The batch path reports only the first failure; re-run each
            // request alone so errors are attributed per request and healthy
            // batch neighbours still get their (bitwise-identical) results.
            Err(_) => images
                .iter()
                .zip(&seeds)
                .map(|(image, &seed)| {
                    self.session
                        .run_seeded(image, seed)
                        .map(Self::result_from_report)
                })
                .collect(),
        }
    }
}

impl serve::ServeModel for Engine {
    type Runner = EngineRunner;

    fn runner(&self) -> EngineRunner {
        EngineRunner {
            session: self.session(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::network::vgg9;

    fn small_engine(precision: Precision) -> Engine {
        Engine::builder()
            .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
            .encoder(Encoder::direct(2))
            .precision(precision)
            .hardware_allocation("test", &[1, 4, 2, 4, 2, 4, 4, 2, 1])
            .build()
            .unwrap()
    }

    fn test_image(phase: usize) -> Tensor {
        Tensor::from_fn(&[3, 16, 16], move |i| {
            (((i + phase * 97) as f32) * 0.017).sin().abs()
        })
    }

    #[test]
    fn engine_run_fuses_output_and_hardware_estimate() {
        let engine = small_engine(Precision::Int4);
        let mut session = engine.session();
        let report = session.run(&test_image(0)).unwrap();
        assert_eq!(report.logits.len(), 10);
        assert!(report.prediction < 10);
        assert_eq!(report.timesteps, 2);
        assert_eq!(report.hardware.layers.len(), 9);
        assert!(report.hardware.latency_ms > 0.0);
        assert!(report.hardware.dynamic_energy_mj > 0.0);
        assert!(report.hardware.fits_device);
    }

    #[test]
    fn sessions_are_independent_and_repeatable() {
        let engine = small_engine(Precision::Int4);
        let mut a = engine.session();
        let mut b = engine.session();
        let image = test_image(1);
        let ra = a.run(&image).unwrap();
        // Interleave another image on session b, then repeat image on a.
        b.run(&test_image(2)).unwrap();
        let ra2 = a.run(&image).unwrap();
        assert_eq!(ra.logits, ra2.logits);
        assert_eq!(ra.record.total_spikes(), ra2.record.total_spikes());
    }

    #[test]
    fn engine_is_cheaply_cloneable_and_shares_weights() {
        let engine = small_engine(Precision::Fp32);
        let clone = engine.clone();
        let r1 = engine.session().run(&test_image(3)).unwrap();
        let r2 = clone.session().run(&test_image(3)).unwrap();
        assert_eq!(r1.logits, r2.logits);
    }

    #[test]
    fn with_hardware_shares_weights_and_rebuilds_plan() {
        let engine = small_engine(Precision::Int4);
        let mut perf4 = engine.hardware().clone();
        perf4.dense_rows *= 4;
        for nc in &mut perf4.neural_cores {
            *nc *= 4;
        }
        let scaled = engine.with_hardware(perf4).unwrap();
        let image = test_image(4);
        let base = engine.session().run(&image).unwrap();
        let fast = scaled.session().run(&image).unwrap();
        // Same workload (identical logits), faster hardware.
        assert_eq!(base.logits, fast.logits);
        assert!(fast.hardware.latency_ms < base.hardware.latency_ms);
    }

    #[test]
    fn builder_requires_a_network() {
        let err = Engine::builder().build().unwrap_err();
        assert!(err.to_string().contains("network"));
    }

    #[test]
    fn builder_rejects_undersized_allocation() {
        let result = Engine::builder()
            .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
            .hardware_allocation("short", &[1, 4, 2])
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn builder_rejects_mismatched_hardware_precision() {
        let fp32_hw =
            HwConfig::from_allocation("fp32", Precision::Fp32, &[1, 4, 2, 4, 2, 4, 4, 2, 1])
                .unwrap();
        let err = Engine::builder()
            .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
            .precision(Precision::Int4)
            .hardware(fp32_hw.clone())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("precision"), "got: {err}");
        // Cross-precision sweeps remain available through with_hardware.
        let engine = small_engine(Precision::Int4);
        assert!(engine.with_hardware(fp32_hw).is_ok());
    }

    #[test]
    fn empty_batch_reports_zero_throughput() {
        let engine = small_engine(Precision::Int4);
        let batch = engine.session().run_batch(&[]).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.throughput_fps(), 0.0);
        assert_eq!(batch.mean_latency_ms(), 0.0);
    }

    #[test]
    fn builder_rejects_rate_coding_with_dense_core() {
        let hw =
            HwConfig::from_allocation("rate", Precision::Int4, &[1, 4, 2, 4, 2, 4, 4, 2, 1, 1])
                .unwrap();
        let result = Engine::builder()
            .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
            .encoder(Encoder::rate(5))
            .hardware(hw)
            .build();
        assert!(result.unwrap_err().to_string().contains("dense core"));
    }

    #[test]
    fn rate_coding_works_without_dense_core() {
        let hw =
            HwConfig::from_allocation("rate", Precision::Int4, &[1, 4, 2, 4, 2, 4, 4, 2, 1, 1])
                .unwrap()
                .without_dense_core();
        let engine = Engine::builder()
            .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
            .encoder(Encoder::rate(5))
            .precision(Precision::Int4)
            .hardware(hw)
            .build()
            .unwrap();
        let report = engine.session().run(&test_image(5)).unwrap();
        assert_eq!(report.timesteps, 5);
        assert!(report.hardware.latency_ms > 0.0);
    }

    #[test]
    fn auto_hardware_covers_both_codings() {
        let direct = Engine::builder()
            .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
            .build()
            .unwrap();
        assert!(direct.hardware().dense_core_enabled);
        let rate = Engine::builder()
            .network(vgg9(&Vgg9Config::cifar10_small()).unwrap())
            .encoder(Encoder::rate(3))
            .build()
            .unwrap();
        assert!(!rate.hardware().dense_core_enabled);
        assert_eq!(rate.hardware().neural_cores.len(), 9);
        rate.session().run(&test_image(6)).unwrap();
    }

    #[test]
    fn batch_report_aggregates() {
        let engine = small_engine(Precision::Int4);
        let mut session = engine.session();
        let images: Vec<Tensor> = (0..3).map(test_image).collect();
        let batch = session.run_batch(&images).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.predictions().len(), 3);
        let sum: f64 = batch.reports.iter().map(|r| r.hardware.latency_ms).sum();
        assert!((batch.total_latency_ms - sum).abs() < 1e-12);
        assert!(batch.mean_latency_ms() > 0.0);
        assert!(batch.throughput_fps() > 0.0);
    }
}
